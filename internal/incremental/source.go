package incremental

import (
	"streambc/internal/bc"
	"streambc/internal/graph"
)

// UpdateSource applies the effect of a single edge update on the betweenness
// data of one source and accumulates the induced changes to vertex and edge
// betweenness.
//
// The update must already be applied to g, while rec still holds the data of
// the graph before the update (distances, shortest-path counts and
// dependencies from source s). On return, rec reflects the new graph and acc
// has received, for every vertex and edge whose centrality changed with
// respect to source s, the difference between the new and the old
// contribution. The returned flag reports whether rec was modified at all; a
// false return means the source was skipped (the dd = 0 case of
// Proposition 3.1 and its relatives).
//
// The workspace provides the scratch buffers; it is reset internally, so the
// same workspace can be reused across sources and updates, but must not be
// shared between concurrent calls.
func UpdateSource(g *graph.Graph, s int, upd graph.Update, rec *bc.SourceState, acc Accumulator, ws *Workspace) bool {
	uH, uL, kind := Classify(rec.Dist, upd, g.Directed())
	if kind == KindSkip {
		return false
	}
	ws.reset(g.N())
	su := &sourceUpdate{
		g: g, s: s, rec: rec, acc: acc, ws: ws,
		kind: kind, uH: uH, uL: uL,
		updKey: bc.EdgeKey(g, upd.U, upd.V),
	}
	switch kind {
	case KindAddition:
		su.forwardAddition(uH, uL)
	case KindRemoval:
		su.forwardRemoval(uH, uL)
	}
	ws.clearBuckets()
	su.backward()
	su.flushEdgeUpdates()
	su.writeBack()
	return len(ws.dirty) > 0
}

// forwardAddition recomputes distances and shortest-path counts in the region
// affected by the addition of edge (uH, uL), where uH is the endpoint closer
// to the source. Distances can only decrease, so the affected region is
// explored with a monotone partial BFS seeded at uL: a vertex is settled when
// its bucket is drained, at which point every predecessor one level up is
// already final and its path count can be recomputed by a neighbour scan.
// This unifies the paper's "0 level rise" (Algorithm 2) and "1 or more levels
// rise" (Algorithm 4) cases.
func (su *sourceUpdate) forwardAddition(uH, uL int) {
	start := int(su.rec.Dist[uH]) + 1
	su.setDist(uL, int32(start))
	su.ws.push(start, uL)
	su.propagateForward()
}

// propagateForward settles the level buckets in ascending order, recomputing
// the shortest-path count of every popped vertex from its predecessors one
// level up (plain neighbour scan, no predecessor lists) and propagating only
// where something actually changed. For additions it also performs the
// distance relaxations (distances can only decrease); for removals the
// distances are already final when this runs, so the relaxation branch never
// fires and the walk reduces to a pruned path-count correction.
func (su *sourceUpdate) propagateForward() {
	ws := su.ws
	for level := 0; level <= ws.maxBucket && level < len(ws.heads); level++ {
		for it := ws.heads[level]; it >= 0; it = ws.qnext[it] {
			v := int(ws.qv[it])
			if ws.forwardDone[v] == ws.version || su.dist(v) != int32(level) {
				continue // already settled, or superseded by a shorter distance
			}
			ws.forwardDone[v] = ws.version

			// Recompute the number of shortest paths from the predecessors
			// one level closer to the source (no predecessor lists: plain
			// neighbour scan, Section 3 "Memory optimisation").
			var sig float64
			for _, y32 := range su.g.In(v) {
				y := int(y32)
				if su.dist(y) == int32(level-1) {
					sig += su.sigma(y)
				}
			}
			su.setSigma(v, sig)

			if sig == su.rec.Sigma[v] && int32(level) == su.rec.Dist[v] {
				continue // nothing changed for v: its sub-DAG is unaffected
			}
			su.markTouched(v)

			for _, w32 := range su.g.Out(v) {
				w := int(w32)
				dw := su.dist(w)
				switch {
				case dw == bc.Unreachable || dw > int32(level+1):
					// w gets pulled closer to the source through v.
					su.setDist(w, int32(level+1))
					ws.push(level+1, w)
				case dw == int32(level+1):
					// w keeps its level but its predecessor set or the path
					// counts of its predecessors changed.
					ws.push(level+1, w)
				}
			}
		}
	}
}

// forwardRemoval recomputes distances and shortest-path counts in the region
// affected by the removal of the shortest-path DAG edge (uH, uL).
//
// If uL keeps another predecessor, no distance changes ("0 level drop",
// Algorithm 2): the path counts below uL are corrected by the same pruned
// propagation used for additions.
//
// Otherwise ("1 or more levels drop", Algorithms 6-9, and the disconnected
// component of Algorithm 10) the set of vertices whose distance increases is
// identified exactly — a vertex drops if and only if all of its old
// predecessors drop — new distances are fixed by a multi-source BFS seeded at
// the pivots (neighbours outside the affected set keep their distance), and
// the path-count correction is then propagated from the affected vertices and
// their old successors.
func (su *sourceUpdate) forwardRemoval(uH, uL int) {
	ws := su.ws
	_ = uH // uH is no longer adjacent to uL: the update is already applied to g.

	dL := su.rec.Dist[uL]
	if su.hasOldPred(uL) {
		// 0 level drop: distances unchanged, only path counts below uL shrink.
		su.setDist(uL, dL)
		ws.push(int(dL), uL)
		su.propagateForward()
		return
	}

	// Affected set: vertices whose distance from the source increases. uL has
	// lost its only predecessor, and a descendant drops exactly when every
	// one of its old predecessors drops. The old sub-DAG is explored level by
	// level, so all predecessors of a vertex are decided before it is tested.
	affected := ws.scopeList[:0]
	ws.inScope[uL] = ws.version
	affected = append(affected, uL)
	for i := 0; i < len(affected); i++ {
		a := affected[i]
		da := su.rec.Dist[a]
		for _, w32 := range su.g.Out(a) {
			w := int(w32)
			if ws.inScope[w] == ws.version || su.rec.Dist[w] != da+1 {
				continue
			}
			if su.hasUnaffectedOldPred(w) {
				continue
			}
			ws.inScope[w] = ws.version
			affected = append(affected, w)
		}
	}
	ws.scopeList = affected

	// New distances for the affected set: multi-source BFS from the pivots
	// (in-neighbours outside the set keep their old distance, Definition 3.2).
	for _, v := range affected {
		best := bc.Unreachable
		for _, y32 := range su.g.In(v) {
			y := int(y32)
			if ws.inScope[y] == ws.version {
				continue
			}
			dy := su.rec.Dist[y]
			if dy == bc.Unreachable {
				continue
			}
			if best == bc.Unreachable || dy+1 < best {
				best = dy + 1
			}
		}
		su.setDist(v, best)
		if best != bc.Unreachable {
			ws.push(int(best), v)
		}
	}
	for level := 0; level <= ws.maxBucket && level < len(ws.heads); level++ {
		for it := ws.heads[level]; it >= 0; it = ws.qnext[it] {
			v := int(ws.qv[it])
			if ws.forwardDone[v] == ws.version || su.dist(v) != int32(level) {
				continue
			}
			ws.forwardDone[v] = ws.version
			for _, w32 := range su.g.Out(v) {
				w := int(w32)
				if ws.inScope[w] != ws.version || ws.forwardDone[w] == ws.version {
					continue
				}
				dw := su.dist(w)
				if dw == bc.Unreachable || dw > int32(level+1) {
					su.setDist(w, int32(level+1))
					ws.push(level+1, w)
				}
			}
		}
	}
	// Reset the forward-done marks consumed by the distance BFS so that the
	// path-count propagation below can settle the same vertices again.
	for _, v := range affected {
		if ws.forwardDone[v] == ws.version {
			ws.forwardDone[v] = 0
		}
	}
	ws.clearBuckets()

	// Vertices never reached are disconnected from the source.
	for _, v := range affected {
		if su.dist(v) == bc.Unreachable {
			su.setSigma(v, 0)
			su.setDelta(v, 0)
			su.markTouched(v)
			ws.lost = append(ws.lost, v)
		}
	}

	// Path-count correction: seed the propagation at every affected vertex
	// that is still reachable and at the old successors of affected vertices
	// (they may lose paths that used to come through a dropped predecessor).
	for _, v := range affected {
		if d := su.dist(v); d != bc.Unreachable {
			ws.push(int(d), v)
		}
		dOld := su.rec.Dist[v]
		for _, w32 := range su.g.Out(v) {
			w := int(w32)
			if ws.inScope[w] == ws.version || su.rec.Dist[w] != dOld+1 {
				continue
			}
			ws.push(int(su.dist(w)), w)
		}
	}
	su.propagateForward()
}

// hasOldPred reports whether v still has, in the updated graph, a neighbour
// that was one level closer to the source before the update.
func (su *sourceUpdate) hasOldPred(v int) bool {
	dv := su.rec.Dist[v]
	for _, y32 := range su.g.In(v) {
		y := int(y32)
		if su.rec.Dist[y] != bc.Unreachable && su.rec.Dist[y]+1 == dv {
			return true
		}
	}
	return false
}

// hasUnaffectedOldPred reports whether v has an old predecessor that is not
// in the affected set built so far.
func (su *sourceUpdate) hasUnaffectedOldPred(v int) bool {
	dv := su.rec.Dist[v]
	for _, y32 := range su.g.In(v) {
		y := int(y32)
		if su.rec.Dist[y]+1 == dv && su.rec.Dist[y] != bc.Unreachable && su.ws.inScope[y] != su.ws.version {
			return true
		}
	}
	return false
}

// backward recomputes the dependencies of every vertex whose contribution to
// betweenness may have changed and folds the differences into the
// accumulator. Vertices are processed in decreasing order of their new
// distance, so that when a vertex is reached all of its successors already
// carry their final dependency. The walk is seeded at the touched vertices
// (and at the old predecessors of touched vertices, whose dependency can
// change even if their own distance and path counts do not) and propagates to
// predecessors whose dependency changes, exactly like the level-queue
// accumulation of Algorithms 2, 4 and 7.
func (su *sourceUpdate) backward() {
	ws := su.ws
	maxLevel := 0

	seed := func(v int) {
		if ws.queuedAt[v] == ws.version {
			return
		}
		d := su.dist(v)
		if d == bc.Unreachable {
			return // unreachable vertices are handled by the pre-pass
		}
		ws.queuedAt[v] = ws.version
		ws.push(int(d), v)
		if int(d) > maxLevel {
			maxLevel = int(d)
		}
	}

	for _, v := range ws.touched {
		seed(v)
		// Old shortest-path predecessors of a vertex with changed data: their
		// dependency loses (or changes) the term contributed through v, even
		// when their own distance and path counts are intact.
		dOld := su.rec.Dist[v]
		if dOld == bc.Unreachable {
			continue
		}
		for _, y32 := range su.g.In(v) {
			y := int(y32)
			if su.rec.Dist[y] == dOld-1 {
				seed(y)
			}
		}
	}

	// A removal severs the adjacency between uH and uL, so uH can no longer
	// be discovered as a predecessor of uL: enqueue it explicitly so that its
	// dependency (which loses the term contributed through uL) is corrected,
	// as in Algorithm 2, lines 11-13.
	if su.kind == KindRemoval {
		seed(su.uH)
	}

	// Pre-pass: vertices that lost their connection to the source.
	for _, v := range ws.lost {
		su.processLost(v, seed)
	}

	for level := maxLevel; level >= 0 && level < len(ws.heads); level-- {
		for it := ws.heads[level]; it >= 0; it = ws.qnext[it] {
			w := int(ws.qv[it])
			if ws.backwardDone[w] == ws.version || su.dist(w) != int32(level) {
				continue
			}
			su.processVertex(w, level, seed)
		}
	}
}

// processLost handles a vertex that became unreachable from the source: its
// dependency and path count drop to zero, its incident edges lose their old
// contributions, and its old predecessors must be revisited.
func (su *sourceUpdate) processLost(v int, seed func(int)) {
	ws := su.ws
	if ws.backwardDone[v] == ws.version {
		return
	}
	ws.backwardDone[v] = ws.version
	su.setDelta(v, 0)
	if v != su.s {
		su.acc.AddVBC(v, -su.rec.Delta[v])
	}
	dOld := su.rec.Dist[v]
	if dOld == bc.Unreachable {
		return
	}
	for _, y32 := range su.g.In(v) {
		y := int(y32)
		if su.rec.Dist[y] == dOld-1 {
			seed(y)
		}
	}
}

// processVertex recomputes the dependency of w (whose new distance is level),
// folds the changes of w and of its incident edges into the accumulator, and
// propagates to the predecessors whose dependency is affected.
func (su *sourceUpdate) processVertex(w, level int, seed func(int)) {
	ws := su.ws
	ws.backwardDone[w] = ws.version

	var dep float64
	sw := su.sigma(w)
	// The dependency scan touches every out-neighbour; on high-degree
	// vertices the stamped reads dominate, so the stamp columns and record
	// columns are hoisted out of the loop.
	ver := ws.version
	dStamp, dNew, recDist := ws.dStamp, ws.dNew, su.rec.Dist
	sStamp, sNew, recSigma := ws.sigmaStamp, ws.sigmaNew, su.rec.Sigma
	eStamp, eNew, recDelta := ws.deltaStamp, ws.deltaNew, su.rec.Delta
	succLevel := int32(level + 1)
	for _, x32 := range su.g.Out(w) {
		x := int(x32)
		dx := recDist[x]
		if dStamp[x] == ver {
			dx = dNew[x]
		}
		if dx != succLevel {
			continue
		}
		sx := recSigma[x]
		if sStamp[x] == ver {
			sx = sNew[x]
		}
		if sx > 0 {
			ex := recDelta[x]
			if eStamp[x] == ver {
				ex = eNew[x]
			}
			dep += sw / sx * (1 + ex)
		}
	}
	su.setDelta(w, dep)
	if w != su.s {
		su.acc.AddVBC(w, dep-su.rec.Delta[w])
	}

	if !su.isTouched(w) && dep == su.rec.Delta[w] {
		return // nothing changed: predecessors keep their dependency
	}
	if level == 1 && su.rec.Dist[w] == 1 {
		// The only vertex at distance 0 — new or old — is the source, and the
		// edge (s, w) must exist for w to sit at distance 1, so the
		// in-neighbour scan reduces to one seed. This matters on hub-like
		// vertices, whose row is a large fraction of the graph.
		seed(su.s)
		return
	}
	for _, y32 := range su.g.In(w) {
		y := int(y32)
		if su.dist(y) == int32(level-1) {
			seed(y) // predecessor in the new DAG
			continue
		}
		if su.rec.Dist[w] != bc.Unreachable && su.rec.Dist[y] == su.rec.Dist[w]-1 {
			seed(y) // predecessor only in the old DAG
		}
	}
}

// flushEdgeUpdates folds the contribution changes of every edge incident to a
// modified vertex into the accumulator, exactly once per edge. It runs after
// the backward phase, when all distances, path counts and dependencies are
// final. For undirected graphs an edge between two modified vertices is
// handled by its smaller endpoint; for directed graphs only out-edges are
// examined (a changed in-edge contribution always has its tail modified as
// well, because dependency changes propagate to predecessors).
func (su *sourceUpdate) flushEdgeUpdates() {
	directed := su.g.Directed()
	ws := su.ws
	for _, w := range ws.dirty {
		// When w's distance and path count are unchanged — only its
		// dependency moved — the contribution of an edge towards a clean
		// (non-dirty) neighbour x can only differ in the orientation where w
		// is the deeper endpoint: sigma[x]/sigma[w]*(1+delta[w]) is the one
		// term that reads delta[w], and every other term of either
		// orientation reads values that did not change. Those edges keep
		// their contribution exactly, so they are skipped unexamined; on a
		// directed graph w is always the shallower endpoint of its
		// out-edges, so every clean out-neighbour is skipped.
		deltaOnly := su.dist(w) == su.rec.Dist[w] && su.sigma(w) == su.rec.Sigma[w]
		dwUp := su.rec.Dist[w] - 1
		row := su.g.Out(w)
		if deltaOnly && (directed || dwUp == 0) && len(row) > 4*len(ws.dirty) {
			// High-degree deltaOnly vertex: every clean neighbour is skipped —
			// except, on an undirected graph with w at distance 1, the one
			// clean neighbour at distance 0, which can only be the source (and
			// the edge (w, s) exists, or w would not sit at distance 1). So
			// instead of scanning the whole row, visit the source and probe
			// the dirty list against the row, with the same dedup rule as the
			// scan. The edge set visited is identical, only its order changes,
			// and each edge key still receives its single AddEBC per source.
			if !directed && ws.isDirty[su.s] != ws.version {
				su.updateEdge(w, su.s)
			}
			for _, x := range ws.dirty {
				if !directed && x < w {
					continue // the other endpoint already handled this edge
				}
				if su.g.HasEdge(w, x) {
					su.updateEdge(w, x)
				}
			}
			continue
		}
		for _, x32 := range row {
			x := int(x32)
			if ws.isDirty[x] == ws.version {
				if !directed && x < w {
					continue // the other endpoint already handled this edge
				}
			} else if deltaOnly && (directed || su.rec.Dist[x] != dwUp) {
				continue // provably unchanged contribution
			}
			su.updateEdge(w, x)
		}
	}
}

func (su *sourceUpdate) updateEdge(a, b int) {
	key := bc.EdgeKey(su.g, a, b)
	var cOld float64
	if !(su.kind == KindAddition && key == su.updKey) {
		// The edge being added did not exist before the update, so it cannot
		// have carried any dependency: its old contribution is zero.
		cOld = su.oldEdgeContribution(a, b)
	}
	cNew := su.newEdgeContribution(a, b)
	if cNew != cOld {
		su.acc.AddEBC(key, cNew-cOld)
	}
}

// oldEdgeContribution returns the dependency the edge (a,b) carried for this
// source before the update: sigma[pred]/sigma[succ]*(1+delta[succ]) if it was
// a shortest-path DAG edge, zero otherwise. For undirected graphs both
// orientations are considered.
func (su *sourceUpdate) oldEdgeContribution(a, b int) float64 {
	da, db := su.rec.Dist[a], su.rec.Dist[b]
	if da != bc.Unreachable && db == da+1 && su.rec.Sigma[b] > 0 {
		return su.rec.Sigma[a] / su.rec.Sigma[b] * (1 + su.rec.Delta[b])
	}
	if !su.g.Directed() && db != bc.Unreachable && da == db+1 && su.rec.Sigma[a] > 0 {
		return su.rec.Sigma[b] / su.rec.Sigma[a] * (1 + su.rec.Delta[a])
	}
	return 0
}

// newEdgeContribution is the counterpart of oldEdgeContribution on the
// updated graph. It relies on the successor (the deeper endpoint) having been
// processed before the edge is examined, which the level order of the
// backward phase guarantees.
func (su *sourceUpdate) newEdgeContribution(a, b int) float64 {
	da, db := su.dist(a), su.dist(b)
	if da != bc.Unreachable && db == da+1 {
		if sb := su.sigma(b); sb > 0 {
			return su.sigma(a) / sb * (1 + su.delta(b))
		}
	}
	if !su.g.Directed() && db != bc.Unreachable && da == db+1 {
		if sa := su.sigma(a); sa > 0 {
			return su.sigma(b) / sa * (1 + su.delta(a))
		}
	}
	return 0
}

// writeBack copies every modified value into the per-source record.
func (su *sourceUpdate) writeBack() {
	for _, v := range su.ws.dirty {
		su.rec.Dist[v] = su.dist(v)
		su.rec.Sigma[v] = su.sigma(v)
		su.rec.Delta[v] = su.delta(v)
	}
}
