package incremental

import (
	"errors"
	"fmt"
	"sync/atomic"

	"streambc/internal/bc"
	"streambc/internal/graph"
)

// SourceProcessor runs the per-source incremental algorithm over the sources
// managed by one Store. It encapsulates the probe/load/update/save loop that
// every embodiment of the framework shares (the sequential Updater, one
// worker of the parallel Engine, one RPC WorkerServer), together with a
// write-back cache over the store that makes batched execution cheap: a
// source affected by several updates of a batch is loaded from the store
// once, mutated in memory across the batch, and saved once when the batch is
// flushed. This amortisation is what makes the out-of-core ("DO")
// configuration viable under a heavy update stream.
//
// Usage: call ProcessUpdate once per update, in stream order, after the
// update has been applied to the graph, then Flush at the end of the batch.
// Applying a single update is simply a batch of one. A SourceProcessor is
// not safe for concurrent use; each worker owns one.
type SourceProcessor struct {
	store Store
	ws    *Workspace

	distBuf []int32

	// Write-back cache: sources touched during the current batch. entries is
	// kept in insertion order so that Flush is deterministic. An entry
	// starts as a cached probe column (the source's distances, valid until
	// the first update that affects it) and is promoted to a full record
	// when the source is affected, so a batch performs at most one
	// LoadDistances, one Load and one Save per source.
	idxArr   []int32 // source -> index into entries, -1 when absent
	entries  []procEntry
	recPool  []*bc.SourceState
	distPool [][]int32

	// Arena backing for fresh cache records (see getRec).
	arenaRecs  []bc.SourceState
	arenaDist  []int32
	arenaSigma []float64
	arenaDelta []float64

	// Probe plane: a transposed, in-memory mirror of every source's distance
	// column, with d(s, v) at plane[v*planeCap + planeCol[s]]. Classification
	// of an update only reads the old distances of its two endpoints
	// (Section 5.1), so with the plane one update probes every source from
	// two contiguous rows instead of one store read per source. The plane is
	// opt-in (BuildProbeIndex); while it is nil the processor probes through
	// the store, so standalone store users are unaffected. The mirror is
	// exact — it is updated from ws.dirty after every source update and
	// tracks store growth — which makes plane classification bit-identical
	// to the store probe. (UpdateSource re-classifies from the record it
	// loads, so a plane bug could only cost wasted loads, never wrong
	// scores, as long as it errs towards "affected".)
	plane       []int32
	planeCol    []int32 // source -> column in the plane, -1 when absent
	planeN      int     // vertices covered (rows)
	planeS      int     // live columns
	planeCap    int     // row stride (column capacity, power of two)
	planeOn     bool    // plane maintenance requested via BuildProbeIndex
	planeStale  bool    // plane must be rebuilt before its next use
	batchProbed bool    // plane path already accounted this batch's probes

	// cacheProbes enables the probe-column half of the cache. It only pays
	// off when more than one update shares the batch; SetBatching turns it
	// on and off between batches.
	cacheProbes bool

	// scale multiplies every betweenness change before it reaches the
	// caller's accumulator (the n/k estimator factor of the sampled-source
	// approximate mode). A scale of 1 — the default, and the exact mode —
	// bypasses the wrapping entirely, leaving that path untouched.
	scale  float64
	scaled ScaledAccumulator

	// Work counters. The processor itself is single-owner, but these are
	// atomics because the metrics registry reads them at scrape time from
	// other goroutines while a batch is in flight.
	skipped   atomic.Int64 // source iterations skipped by the distance probe
	updated   atomic.Int64 // source iterations that ran the recomputation
	additions atomic.Int64 // iterations classified as structural additions
	removals  atomic.Int64 // iterations classified as DAG-edge removals
	probes    atomic.Int64 // store LoadDistances calls (probe columns read)
	loads     atomic.Int64 // store Load calls (full records read)
	saves     atomic.Int64 // store Save calls (dirty records written back)

	// Store stats snapshot, refreshed at every Flush (and when the probe
	// index is built), so the metrics registry reads a coherent recent view
	// without calling into the store from the scrape goroutine while a batch
	// is in flight.
	stRecords    atomic.Int64
	stBytes      atomic.Int64
	stDirty      atomic.Int64
	stSegments   atomic.Int64
	stFlushes    atomic.Int64
	stMigrations atomic.Int64
	stMmapReads  atomic.Int64
	stPreadReads atomic.Int64

	// OnSourceUpdated, when non-nil, is invoked after UpdateSource modified
	// the record of a source, with the source, its new record and the list
	// of modified vertices. The slice is only valid for the duration of the
	// call. It is used by the predecessor-list (MP) variant to keep its
	// lists in sync.
	OnSourceUpdated func(s int, rec *bc.SourceState, dirty []int)
}

type procEntry struct {
	src   int
	rec   *bc.SourceState // full record; nil while only the probe is cached
	dist  []int32         // cached probe column, valid while rec == nil
	dirty bool
}

// NewSourceProcessor returns a processor over store for graphs of (at least)
// n vertices; the workspace grows automatically with the graph. The workspace
// comes from the shared pool: call Release when the processor is retired so
// the scratch memory can be reused (by replay paths, replication appliers and
// later processors).
func NewSourceProcessor(store Store, n int) *SourceProcessor {
	p := &SourceProcessor{
		store: store,
		ws:    AcquireWorkspace(n),
		scale: 1,
	}
	p.ensureIdx(n)
	return p
}

// ensureIdx grows the source -> cache-entry index to cover n sources (new
// slots start empty).
func (p *SourceProcessor) ensureIdx(n int) {
	if n <= len(p.idxArr) {
		return
	}
	old := len(p.idxArr)
	if cap(p.idxArr) >= n {
		p.idxArr = p.idxArr[:n]
	} else {
		grown := make([]int32, n, 2*n)
		copy(grown, p.idxArr)
		p.idxArr = grown
	}
	for i := old; i < n; i++ {
		p.idxArr[i] = -1
	}
}

// Release returns the processor's pooled scratch memory. The processor must
// not be used afterwards.
func (p *SourceProcessor) Release() {
	ReleaseWorkspace(p.ws)
	p.ws = nil
}

// SetScale sets the factor applied to every betweenness change produced by
// subsequent updates (1 = exact mode, n/k = sampled mode). Call it once,
// before any update is processed.
func (p *SourceProcessor) SetScale(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	p.scale = scale
}

// Scale returns the configured estimator scaling factor (1 in exact mode).
func (p *SourceProcessor) Scale() float64 { return p.scale }

// Store returns the underlying per-source store.
func (p *SourceProcessor) Store() Store { return p.store }

// Skipped returns how many source iterations were skipped by the distance
// probe so far.
func (p *SourceProcessor) Skipped() int64 { return p.skipped.Load() }

// Updated returns how many source iterations ran the partial recomputation.
func (p *SourceProcessor) Updated() int64 { return p.updated.Load() }

// Additions returns how many source iterations were classified as structural
// edge additions (KindAddition).
func (p *SourceProcessor) Additions() int64 { return p.additions.Load() }

// Removals returns how many source iterations were classified as
// shortest-path-DAG edge removals (KindRemoval).
func (p *SourceProcessor) Removals() int64 { return p.removals.Load() }

// Probes returns how many probe columns were read from the store.
func (p *SourceProcessor) Probes() int64 { return p.probes.Load() }

// Loads returns how many full per-source records were read from the store.
func (p *SourceProcessor) Loads() int64 { return p.loads.Load() }

// Saves returns how many dirty records were written back to the store.
func (p *SourceProcessor) Saves() int64 { return p.saves.Load() }

// affected is the counted twin of Affected: it classifies the update for one
// source and maintains the skip/addition/removal counters the metrics
// registry exposes.
func (p *SourceProcessor) affected(dist []int32, upd graph.Update, directed bool) bool {
	switch _, _, kind := Classify(dist, upd, directed); kind {
	case KindAddition:
		p.additions.Add(1)
		return true
	case KindRemoval:
		p.removals.Add(1)
		return true
	default:
		p.skipped.Add(1)
		return false
	}
}

// ProcessUpdate runs the per-source algorithm for one update on every source
// in sources (nil means every vertex of g), folding the betweenness changes
// into acc. The update must already be applied to g; within a batch, updates
// must be processed in stream order. Affected sources are served from the
// write-back cache when a previous update of the batch already loaded them.
func (p *SourceProcessor) ProcessUpdate(g *graph.Graph, sources []int, upd graph.Update, acc Accumulator) error {
	directed := g.Directed()
	n := g.N()
	if p.scale != 1 {
		p.scaled = ScaledAccumulator{Acc: acc, Scale: p.scale}
		acc = &p.scaled
	}
	p.ensureIdx(n)
	if p.planeOn && p.planeStale {
		p.planeStale = false
		if err := p.rebuildPlane(); err != nil {
			return err
		}
	}
	if p.plane != nil {
		return p.processUpdatePlane(g, n, sources, upd, directed, acc)
	}
	if sources == nil {
		for s := 0; s < n; s++ {
			if err := p.processOne(g, n, s, upd, directed, acc); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range sources {
		if err := p.processOne(g, n, s, upd, directed, acc); err != nil {
			return err
		}
	}
	return nil
}

// planeTally accumulates one update's worth of work-counter increments so
// the per-source classification loop — a thousand sources per update — pays
// one atomic add per counter per update instead of one per source.
type planeTally struct {
	skipped, updated, additions, removals, probes int64
}

// processUpdatePlane is ProcessUpdate over the transposed probe plane: the
// update's two endpoint rows hold the old distances of every source, so each
// source's probe is two contiguous loads instead of a store read. The probe
// counter keeps its store-path meaning — distance columns consulted: one per
// source per unbatched update, and one per source per batch when batching
// (the plane stands in for the column reads the legacy path would make).
func (p *SourceProcessor) processUpdatePlane(g *graph.Graph, n int, sources []int, upd graph.Update, directed bool, acc Accumulator) error {
	capS := p.planeCap
	var rowU, rowV []int32
	if upd.U < p.planeN {
		rowU = p.plane[upd.U*capS : (upd.U+1)*capS]
	}
	if upd.V < p.planeN {
		rowV = p.plane[upd.V*capS : (upd.V+1)*capS]
	}
	if p.cacheProbes && !p.batchProbed {
		if sources == nil {
			p.probes.Add(int64(n))
		} else {
			p.probes.Add(int64(len(sources)))
		}
		p.batchProbed = true
	}
	var t planeTally
	defer func() {
		if t.probes != 0 {
			p.probes.Add(t.probes)
		}
		if t.skipped != 0 {
			p.skipped.Add(t.skipped)
		}
		if t.updated != 0 {
			p.updated.Add(t.updated)
		}
		if t.additions != 0 {
			p.additions.Add(t.additions)
		}
		if t.removals != 0 {
			p.removals.Add(t.removals)
		}
	}()
	if sources == nil {
		for s := 0; s < n; s++ {
			if err := p.processOnePlane(g, n, s, upd, directed, acc, rowU, rowV, &t); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range sources {
		if err := p.processOnePlane(g, n, s, upd, directed, acc, rowU, rowV, &t); err != nil {
			return err
		}
	}
	return nil
}

func (p *SourceProcessor) processOnePlane(g *graph.Graph, n, s int, upd graph.Update, directed bool, acc Accumulator, rowU, rowV []int32, t *planeTally) error {
	var col int32 = -1
	if s < len(p.planeCol) {
		col = p.planeCol[s]
	}
	if col < 0 {
		// Not covered by the plane (a source the plane lost track of between
		// rebuilds): probe through the store (counted by its own atomics).
		return p.processOne(g, n, s, upd, directed, acc)
	}
	if !p.cacheProbes {
		t.probes++
	}
	du, dv := bc.Unreachable, bc.Unreachable
	if rowU != nil {
		du = rowU[col]
	}
	if rowV != nil {
		dv = rowV[col]
	}
	switch _, _, kind := classifyAt(du, dv, upd, directed); kind {
	case KindAddition:
		t.additions++
	case KindRemoval:
		t.removals++
	default:
		t.skipped++
		return nil
	}
	if j := p.idxArr[s]; j >= 0 {
		ent := &p.entries[j]
		if ent.rec != nil {
			// Fully cached: the record already reflects every earlier update
			// of the batch, and the plane mirrors it.
			ent.rec.Resize(n)
			if UpdateSource(g, s, upd, ent.rec, acc, p.ws) {
				ent.dirty = true
				p.planeWriteBack(s, ent.rec)
				if p.OnSourceUpdated != nil {
					p.OnSourceUpdated(s, ent.rec, p.ws.dirty)
				}
			}
			t.updated++
			return nil
		}
		// A probe-only entry from before the plane took over: its column is
		// store-identical, drop it and load the full record.
		if ent.dist != nil {
			p.distPool = append(p.distPool, ent.dist)
			ent.dist = nil
		}
	}
	return p.loadAndProcess(g, n, s, upd, acc)
}

// SetBatching declares whether the updates that follow share a batch. With
// batching on, the probe columns of skipped sources are cached too, so a
// source is probed against the store once per batch instead of once per
// update (the cached column stays valid until the first update that affects
// the source, which promotes it to a full record). With batching off — a
// batch of one — caching the probe would be pure overhead, so only affected
// sources are cached. Call between batches only.
func (p *SourceProcessor) SetBatching(on bool) {
	p.cacheProbes = on
	p.batchProbed = false
}

// probePlaneBudget caps the memory the probe plane may occupy. Beyond it the
// processor silently keeps probing through the store: the plane trades memory
// for probe I/O and past this size the trade is no longer obviously right.
const probePlaneBudget = 64 << 20

// BuildProbeIndex builds the transposed probe plane from the store's current
// contents and keeps it in sync from then on. Call it once, after the store
// has been initialised with every source's record, and route all further
// store growth through GrowStore/AddStoreSource. Oversized planes (beyond an
// internal memory budget) are skipped silently.
func (p *SourceProcessor) BuildProbeIndex() error {
	p.planeOn = true
	p.planeStale = false
	if err := p.rebuildPlane(); err != nil {
		return err
	}
	p.preloadRecords()
	// Index building happens at startup, before any update is in flight:
	// seed the stats snapshot so metrics are meaningful before the first
	// batch flushes.
	p.snapshotStoreStats()
	return nil
}

// preloadRecords warms the write-through record cache from the store, up to
// the same budget Flush retains under. The first batches after startup would
// otherwise pay one store read per affected source before the cache fills
// organically; pre-filling it at index-build time (startup, before any update
// is in flight) moves that cost out of the update path. Entries are clean and
// store-identical, exactly the state Flush leaves retained records in, so
// this is purely a warm-up — any load error simply stops the warm-up.
func (p *SourceProcessor) preloadRecords() {
	if p.plane == nil {
		return
	}
	n := p.store.NumVertices()
	if n <= 0 {
		return
	}
	retain := recCacheBudget / (n * (4 + 8 + 8))
	p.ensureIdx(n)
	for _, s := range p.store.Sources() {
		if len(p.entries) >= retain {
			return
		}
		if s >= len(p.idxArr) || p.idxArr[s] >= 0 {
			continue
		}
		rec := p.getRec()
		p.loads.Add(1)
		if err := p.store.Load(s, rec); err != nil {
			p.recPool = append(p.recPool, rec)
			return
		}
		p.idxArr[s] = int32(len(p.entries))
		p.entries = append(p.entries, procEntry{src: s, rec: rec})
	}
}

func (p *SourceProcessor) dropPlane() {
	p.plane = nil
	p.planeN, p.planeS, p.planeCap = 0, 0, 0
}

// rebuildPlane re-derives the plane from the store, then overlays any records
// cached by the in-flight batch (they can be newer than the store until the
// next Flush). Column capacity keeps power-of-two slack so that sources added
// later slot in without a restride.
func (p *SourceProcessor) rebuildPlane() error {
	sources := p.store.Sources()
	n := p.store.NumVertices()
	capS := 16
	for capS < len(sources) {
		capS *= 2
	}
	if int64(n)*int64(capS)*4 > probePlaneBudget {
		p.dropPlane()
		return nil
	}
	need := n * capS
	if cap(p.plane) < need {
		p.plane = make([]int32, need)
	} else {
		p.plane = p.plane[:need]
	}
	if cap(p.planeCol) < n {
		p.planeCol = make([]int32, n)
	} else {
		p.planeCol = p.planeCol[:n]
	}
	for i := range p.planeCol {
		p.planeCol[i] = -1
	}
	p.planeN, p.planeS, p.planeCap = n, len(sources), capS
	for i, s := range sources {
		if err := p.store.LoadDistances(s, &p.distBuf); err != nil {
			p.dropPlane()
			return fmt.Errorf("incremental: building probe plane for source %d: %w", s, err)
		}
		p.planeCol[s] = int32(i)
		row := p.distBuf
		for v := 0; v < n; v++ {
			p.plane[v*capS+i] = distOf(row, v)
		}
	}
	for i := range p.entries {
		ent := &p.entries[i]
		if ent.rec == nil {
			// Probe-only entries are store-identical by construction: no
			// earlier update of the batch affected them.
			continue
		}
		col := p.planeCol[ent.src]
		if col < 0 {
			continue
		}
		for v := 0; v < n; v++ {
			p.plane[v*capS+int(col)] = distOf(ent.rec.Dist, v)
		}
	}
	return nil
}

// GrowStore extends the store to cover n vertices, keeping the probe plane
// consistent (new vertices are unreachable from every existing source,
// exactly how the store pads grown records). Once a plane has been built, all
// store growth must go through the owning processor.
func (p *SourceProcessor) GrowStore(n int) error {
	if err := p.store.Grow(n); err != nil {
		return err
	}
	if p.plane == nil || n <= p.planeN {
		return nil
	}
	if int64(n)*int64(p.planeCap)*4 > probePlaneBudget {
		p.dropPlane()
		return nil
	}
	old := p.planeN
	need := n * p.planeCap
	if cap(p.plane) < need {
		grown := make([]int32, need)
		copy(grown, p.plane)
		p.plane = grown
	} else {
		p.plane = p.plane[:need]
	}
	for i := old * p.planeCap; i < need; i++ {
		p.plane[i] = bc.Unreachable
	}
	if cap(p.planeCol) < n {
		grown := make([]int32, n)
		copy(grown, p.planeCol)
		p.planeCol = grown
	} else {
		p.planeCol = p.planeCol[:n]
	}
	for i := old; i < n; i++ {
		p.planeCol[i] = -1
	}
	p.planeN = n
	return nil
}

// AddStoreSource registers s as a source of the store, keeping the probe
// plane consistent: the new source's record sees only itself, so its column
// is Unreachable everywhere except 0 at s. A source arriving with no column
// capacity left (or ahead of a GrowStore) marks the plane for rebuild.
func (p *SourceProcessor) AddStoreSource(s int) error {
	if err := p.store.AddSource(s); err != nil {
		return err
	}
	if p.plane == nil {
		return nil
	}
	if s >= p.planeN || p.planeS == p.planeCap {
		p.planeStale = true
		return nil
	}
	col := p.planeS
	p.planeS++
	p.planeCol[s] = int32(col)
	for v := 0; v < p.planeN; v++ {
		p.plane[v*p.planeCap+col] = bc.Unreachable
	}
	p.plane[s*p.planeCap+col] = 0
	return nil
}

// planeWriteBack mirrors one source update into the probe plane: after
// UpdateSource, ws.dirty lists every vertex whose record entries changed and
// rec already holds the new values.
func (p *SourceProcessor) planeWriteBack(s int, rec *bc.SourceState) {
	if p.plane == nil {
		return
	}
	var col int32 = -1
	if s < len(p.planeCol) {
		col = p.planeCol[s]
	}
	if col < 0 {
		return
	}
	capS := p.planeCap
	for _, v := range p.ws.dirty {
		if v < p.planeN {
			p.plane[v*capS+int(col)] = rec.Dist[v]
		}
	}
}

func (p *SourceProcessor) processOne(g *graph.Graph, n, s int, upd graph.Update, directed bool, acc Accumulator) error {
	j := p.idxArr[s]
	if j < 0 {
		if !p.cacheProbes {
			// Unbatched fast path: probe through the shared buffer and cache
			// the source only when it is affected.
			p.probes.Add(1)
			if err := p.store.LoadDistances(s, &p.distBuf); err != nil {
				return fmt.Errorf("incremental: loading distances of source %d: %w", s, err)
			}
			if !p.affected(p.distBuf, upd, directed) {
				return nil
			}
			return p.loadAndProcess(g, n, s, upd, acc)
		}
		// First time the batch touches this source: cache its probe column.
		// The column is loaded directly through the cached entry so that no
		// local slice header escapes to the heap (this probe runs once per
		// source per batch and dominated the allocation profile).
		j = int32(len(p.entries))
		p.entries = append(p.entries, procEntry{src: s, dist: p.getDist()})
		p.probes.Add(1)
		if err := p.store.LoadDistances(s, &p.entries[j].dist); err != nil {
			p.distPool = append(p.distPool, p.entries[j].dist)
			p.entries = p.entries[:j]
			return fmt.Errorf("incremental: loading distances of source %d: %w", s, err)
		}
		p.idxArr[s] = j
	}
	ent := &p.entries[j]
	if ent.rec == nil {
		// Only the probe column is cached. It is still current: no earlier
		// update of the batch affected this source. Vertices beyond its
		// length (mid-batch growth) read as unreachable, exactly how the
		// store pads grown records.
		if !p.affected(ent.dist, upd, directed) {
			return nil
		}
		p.distPool = append(p.distPool, ent.dist)
		ent.dist = nil
		return p.loadAndProcess(g, n, s, upd, acc)
	}
	// Fully cached: the record already reflects every earlier update of the
	// batch, so its distance column doubles as the probe.
	ent.rec.Resize(n)
	if !p.affected(ent.rec.Dist, upd, directed) {
		return nil
	}
	if UpdateSource(g, s, upd, ent.rec, acc, p.ws) {
		ent.dirty = true
		p.planeWriteBack(s, ent.rec)
		if p.OnSourceUpdated != nil {
			p.OnSourceUpdated(s, ent.rec, p.ws.dirty)
		}
	}
	p.updated.Add(1)
	return nil
}

// loadAndProcess loads the full record of an affected source into the cache
// and runs the per-source algorithm for upd.
func (p *SourceProcessor) loadAndProcess(g *graph.Graph, n, s int, upd graph.Update, acc Accumulator) error {
	rec := p.getRec()
	p.loads.Add(1)
	if err := p.store.Load(s, rec); err != nil {
		p.recPool = append(p.recPool, rec)
		return fmt.Errorf("incremental: loading source %d: %w", s, err)
	}
	rec.Resize(n)
	dirty := UpdateSource(g, s, upd, rec, acc, p.ws)
	if dirty {
		p.planeWriteBack(s, rec)
		if p.OnSourceUpdated != nil {
			p.OnSourceUpdated(s, rec, p.ws.dirty)
		}
	}
	if j := p.idxArr[s]; j >= 0 {
		ent := &p.entries[j]
		ent.rec = rec
		ent.dirty = dirty
	} else {
		p.idxArr[s] = int32(len(p.entries))
		p.entries = append(p.entries, procEntry{src: s, rec: rec, dirty: dirty})
	}
	p.updated.Add(1)
	return nil
}

// ErrFlushFailed marks errors returned by Flush: the write-back cache could
// not be fully persisted, so the store may no longer match the in-memory
// state. Callers distinguish it (via errors.Is) from per-update validation
// rejections, which never corrupt anything.
var ErrFlushFailed = errors.New("incremental: batch flush failed")

// recCacheBudget caps the memory the retained-record cache may hold across
// batches (see Flush).
const recCacheBudget = 64 << 20

// Flush writes every record modified since the last flush back to the store
// (at most one Save per source, regardless of how many updates of the batch
// touched it). The cache is write-through: once the probe plane owns all
// store writes, cleanly saved records are retained across batches up to a
// memory budget, so a source churned by consecutive batches is not re-read
// from the store — the store itself stays current at every flush. Probe-only
// columns are always released, as are all records when no plane is active
// (standalone embodiments keep the strict load-per-batch behaviour). Records
// whose save failed are dropped; the first error is returned, wrapped in
// ErrFlushFailed.
func (p *SourceProcessor) Flush() error {
	var firstErr error
	retain := 0
	if p.plane != nil {
		if n := p.store.NumVertices(); n > 0 {
			retain = recCacheBudget / (n * (4 + 8 + 8))
		}
	}
	kept := p.entries[:0]
	for i := range p.entries {
		ent := p.entries[i]
		var saveErr error
		if ent.dirty {
			p.saves.Add(1)
			if saveErr = p.store.Save(ent.src, ent.rec); saveErr != nil && firstErr == nil {
				firstErr = fmt.Errorf("incremental: saving source %d: %w", ent.src, saveErr)
			}
			ent.dirty = false
		}
		if ent.dist != nil {
			p.distPool = append(p.distPool, ent.dist)
			ent.dist = nil
		}
		if ent.rec != nil && saveErr == nil && len(kept) < retain {
			p.idxArr[ent.src] = int32(len(kept))
			kept = append(kept, ent)
			continue
		}
		if ent.rec != nil {
			p.recPool = append(p.recPool, ent.rec)
		}
		p.idxArr[ent.src] = -1
	}
	p.entries = kept
	p.batchProbed = false
	// Push staged writes down to the backing medium (a no-op for
	// write-through stores) and refresh the stats snapshot while the store
	// is quiescent.
	if err := p.store.Flush(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("incremental: flushing store: %w", err)
	}
	p.snapshotStoreStats()
	if firstErr != nil {
		return fmt.Errorf("%w: %w", ErrFlushFailed, firstErr)
	}
	return nil
}

// snapshotStoreStats copies the store's current Stats into atomics readable
// from the metrics scrape goroutine.
func (p *SourceProcessor) snapshotStoreStats() {
	st := p.store.Stats()
	p.stRecords.Store(st.Records)
	p.stBytes.Store(st.Bytes)
	p.stDirty.Store(st.Dirty)
	p.stSegments.Store(st.Segments)
	p.stFlushes.Store(st.Flushes)
	p.stMigrations.Store(st.Migrations)
	p.stMmapReads.Store(st.MmapReads)
	p.stPreadReads.Store(st.PreadReads)
}

// StoreStats returns the store stats snapshot taken at the last flush. It is
// safe to call from any goroutine.
func (p *SourceProcessor) StoreStats() StoreStats {
	return StoreStats{
		Records:    p.stRecords.Load(),
		Bytes:      p.stBytes.Load(),
		Dirty:      p.stDirty.Load(),
		Segments:   p.stSegments.Load(),
		Flushes:    p.stFlushes.Load(),
		Migrations: p.stMigrations.Load(),
		MmapReads:  p.stMmapReads.Load(),
		PreadReads: p.stPreadReads.Load(),
	}
}

// CachedSources returns how many sources the write-back cache currently
// holds (the unflushed batch's entries plus any records retained across
// batches by the write-through cache).
func (p *SourceProcessor) CachedSources() int { return len(p.entries) }

// recChunk is how many records one arena chunk backs. Fresh records are
// carved out of shared column arrays so that a cold batch touching hundreds
// of sources costs a handful of allocations instead of four per record; the
// records themselves live on in recPool, so the arena only ever feeds the
// high-water mark of a batch.
const recChunk = 64

func (p *SourceProcessor) getRec() *bc.SourceState {
	if k := len(p.recPool); k > 0 {
		rec := p.recPool[k-1]
		p.recPool = p.recPool[:k-1]
		return rec
	}
	n := p.store.NumVertices()
	if n <= 0 {
		return bc.NewSourceState(0)
	}
	if len(p.arenaDist) < n {
		p.arenaRecs = make([]bc.SourceState, recChunk)
		p.arenaDist = make([]int32, recChunk*n)
		p.arenaSigma = make([]float64, recChunk*n)
		p.arenaDelta = make([]float64, recChunk*n)
	}
	rec := &p.arenaRecs[0]
	p.arenaRecs = p.arenaRecs[1:]
	// Full slice expressions pin the capacity: if the graph grows past n,
	// Resize reallocates the columns instead of bleeding into the neighbour
	// record's backing.
	rec.Dist = p.arenaDist[:n:n]
	rec.Sigma = p.arenaSigma[:n:n]
	rec.Delta = p.arenaDelta[:n:n]
	p.arenaDist = p.arenaDist[n:]
	p.arenaSigma = p.arenaSigma[n:]
	p.arenaDelta = p.arenaDelta[n:]
	return rec
}

func (p *SourceProcessor) getDist() []int32 {
	if k := len(p.distPool); k > 0 {
		d := p.distPool[k-1]
		p.distPool = p.distPool[:k-1]
		return d
	}
	return nil
}

// ValidateUpdate checks that upd is applicable to g: self loops and negative
// endpoints are rejected, removals must name an existing edge, and additions
// must not duplicate one (endpoints beyond the current vertex range are
// allowed for additions — they grow the graph). It is shared by the
// sequential Updater and the parallel Engine.
func ValidateUpdate(g *graph.Graph, upd graph.Update) error {
	if upd.U == upd.V {
		return graph.ErrSelfLoop
	}
	if upd.U < 0 || upd.V < 0 {
		return fmt.Errorf("%w: negative vertex in %v", graph.ErrVertexRange, upd)
	}
	if upd.Remove {
		if !g.HasEdge(upd.U, upd.V) {
			return fmt.Errorf("%w: %v", graph.ErrMissingEdge, upd.Edge())
		}
		return nil
	}
	if upd.U < g.N() && upd.V < g.N() && g.HasEdge(upd.U, upd.V) {
		return fmt.Errorf("%w: %v", graph.ErrDuplicateEdge, upd.Edge())
	}
	return nil
}

// IsValidationError reports whether err is an update-validation rejection
// (self loop, vertex out of range, removing a missing edge, duplicating an
// existing one) as opposed to an infrastructure failure such as a store I/O
// error. Validation errors are raised before any state is mutated, so the
// offending update can simply be skipped; anything else means the engine's
// state can no longer be trusted.
func IsValidationError(err error) bool {
	return errors.Is(err, graph.ErrSelfLoop) ||
		errors.Is(err, graph.ErrVertexRange) ||
		errors.Is(err, graph.ErrMissingEdge) ||
		errors.Is(err, graph.ErrDuplicateEdge)
}

// GrowGraphAndResult extends the graph and the vertex betweenness slice to
// cover n vertices (new vertices join isolated, with zero centrality) and
// returns the previous vertex count. Callers register the new sources
// [old, n) with their store(s) afterwards. It is the store-independent half
// of the growth path shared by the Updater and the Engine.
func GrowGraphAndResult(g *graph.Graph, res *bc.Result, n int) (old int) {
	old = g.N()
	for g.N() < n {
		g.AddVertex()
	}
	for len(res.VBC) < n {
		res.VBC = append(res.VBC, 0)
	}
	return old
}
