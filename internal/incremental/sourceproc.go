package incremental

import (
	"errors"
	"fmt"
	"sync/atomic"

	"streambc/internal/bc"
	"streambc/internal/graph"
)

// SourceProcessor runs the per-source incremental algorithm over the sources
// managed by one Store. It encapsulates the probe/load/update/save loop that
// every embodiment of the framework shares (the sequential Updater, one
// worker of the parallel Engine, one RPC WorkerServer), together with a
// write-back cache over the store that makes batched execution cheap: a
// source affected by several updates of a batch is loaded from the store
// once, mutated in memory across the batch, and saved once when the batch is
// flushed. This amortisation is what makes the out-of-core ("DO")
// configuration viable under a heavy update stream.
//
// Usage: call ProcessUpdate once per update, in stream order, after the
// update has been applied to the graph, then Flush at the end of the batch.
// Applying a single update is simply a batch of one. A SourceProcessor is
// not safe for concurrent use; each worker owns one.
type SourceProcessor struct {
	store Store
	ws    *Workspace

	distBuf []int32

	// Write-back cache: sources touched during the current batch. entries is
	// kept in insertion order so that Flush is deterministic. An entry
	// starts as a cached probe column (the source's distances, valid until
	// the first update that affects it) and is promoted to a full record
	// when the source is affected, so a batch performs at most one
	// LoadDistances, one Load and one Save per source.
	idx      map[int]int // source -> index into entries
	entries  []procEntry
	recPool  []*bc.SourceState
	distPool [][]int32

	// cacheProbes enables the probe-column half of the cache. It only pays
	// off when more than one update shares the batch; SetBatching turns it
	// on and off between batches.
	cacheProbes bool

	// scale multiplies every betweenness change before it reaches the
	// caller's accumulator (the n/k estimator factor of the sampled-source
	// approximate mode). A scale of 1 — the default, and the exact mode —
	// bypasses the wrapping entirely, leaving that path untouched.
	scale  float64
	scaled ScaledAccumulator

	// Work counters. The processor itself is single-owner, but these are
	// atomics because the metrics registry reads them at scrape time from
	// other goroutines while a batch is in flight.
	skipped   atomic.Int64 // source iterations skipped by the distance probe
	updated   atomic.Int64 // source iterations that ran the recomputation
	additions atomic.Int64 // iterations classified as structural additions
	removals  atomic.Int64 // iterations classified as DAG-edge removals
	probes    atomic.Int64 // store LoadDistances calls (probe columns read)
	loads     atomic.Int64 // store Load calls (full records read)
	saves     atomic.Int64 // store Save calls (dirty records written back)

	// OnSourceUpdated, when non-nil, is invoked after UpdateSource modified
	// the record of a source, with the source, its new record and the list
	// of modified vertices. The slice is only valid for the duration of the
	// call. It is used by the predecessor-list (MP) variant to keep its
	// lists in sync.
	OnSourceUpdated func(s int, rec *bc.SourceState, dirty []int)
}

type procEntry struct {
	src   int
	rec   *bc.SourceState // full record; nil while only the probe is cached
	dist  []int32         // cached probe column, valid while rec == nil
	dirty bool
}

// NewSourceProcessor returns a processor over store for graphs of (at least)
// n vertices; the workspace grows automatically with the graph.
func NewSourceProcessor(store Store, n int) *SourceProcessor {
	return &SourceProcessor{
		store: store,
		ws:    NewWorkspace(n),
		idx:   make(map[int]int),
		scale: 1,
	}
}

// SetScale sets the factor applied to every betweenness change produced by
// subsequent updates (1 = exact mode, n/k = sampled mode). Call it once,
// before any update is processed.
func (p *SourceProcessor) SetScale(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	p.scale = scale
}

// Scale returns the configured estimator scaling factor (1 in exact mode).
func (p *SourceProcessor) Scale() float64 { return p.scale }

// Store returns the underlying per-source store.
func (p *SourceProcessor) Store() Store { return p.store }

// Skipped returns how many source iterations were skipped by the distance
// probe so far.
func (p *SourceProcessor) Skipped() int64 { return p.skipped.Load() }

// Updated returns how many source iterations ran the partial recomputation.
func (p *SourceProcessor) Updated() int64 { return p.updated.Load() }

// Additions returns how many source iterations were classified as structural
// edge additions (KindAddition).
func (p *SourceProcessor) Additions() int64 { return p.additions.Load() }

// Removals returns how many source iterations were classified as
// shortest-path-DAG edge removals (KindRemoval).
func (p *SourceProcessor) Removals() int64 { return p.removals.Load() }

// Probes returns how many probe columns were read from the store.
func (p *SourceProcessor) Probes() int64 { return p.probes.Load() }

// Loads returns how many full per-source records were read from the store.
func (p *SourceProcessor) Loads() int64 { return p.loads.Load() }

// Saves returns how many dirty records were written back to the store.
func (p *SourceProcessor) Saves() int64 { return p.saves.Load() }

// affected is the counted twin of Affected: it classifies the update for one
// source and maintains the skip/addition/removal counters the metrics
// registry exposes.
func (p *SourceProcessor) affected(dist []int32, upd graph.Update, directed bool) bool {
	switch _, _, kind := Classify(dist, upd, directed); kind {
	case KindAddition:
		p.additions.Add(1)
		return true
	case KindRemoval:
		p.removals.Add(1)
		return true
	default:
		p.skipped.Add(1)
		return false
	}
}

// ProcessUpdate runs the per-source algorithm for one update on every source
// in sources (nil means every vertex of g), folding the betweenness changes
// into acc. The update must already be applied to g; within a batch, updates
// must be processed in stream order. Affected sources are served from the
// write-back cache when a previous update of the batch already loaded them.
func (p *SourceProcessor) ProcessUpdate(g *graph.Graph, sources []int, upd graph.Update, acc Accumulator) error {
	directed := g.Directed()
	n := g.N()
	if p.scale != 1 {
		p.scaled = ScaledAccumulator{Acc: acc, Scale: p.scale}
		acc = &p.scaled
	}
	if sources == nil {
		for s := 0; s < n; s++ {
			if err := p.processOne(g, n, s, upd, directed, acc); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range sources {
		if err := p.processOne(g, n, s, upd, directed, acc); err != nil {
			return err
		}
	}
	return nil
}

// SetBatching declares whether the updates that follow share a batch. With
// batching on, the probe columns of skipped sources are cached too, so a
// source is probed against the store once per batch instead of once per
// update (the cached column stays valid until the first update that affects
// the source, which promotes it to a full record). With batching off — a
// batch of one — caching the probe would be pure overhead, so only affected
// sources are cached. Call between batches only.
func (p *SourceProcessor) SetBatching(on bool) { p.cacheProbes = on }

func (p *SourceProcessor) processOne(g *graph.Graph, n, s int, upd graph.Update, directed bool, acc Accumulator) error {
	j, ok := p.idx[s]
	if !ok {
		if !p.cacheProbes {
			// Unbatched fast path: probe through the shared buffer and cache
			// the source only when it is affected.
			p.probes.Add(1)
			if err := p.store.LoadDistances(s, &p.distBuf); err != nil {
				return fmt.Errorf("incremental: loading distances of source %d: %w", s, err)
			}
			if !p.affected(p.distBuf, upd, directed) {
				return nil
			}
			return p.loadAndProcess(g, n, s, upd, acc)
		}
		// First time the batch touches this source: cache its probe column.
		dist := p.getDist()
		p.probes.Add(1)
		if err := p.store.LoadDistances(s, &dist); err != nil {
			p.distPool = append(p.distPool, dist)
			return fmt.Errorf("incremental: loading distances of source %d: %w", s, err)
		}
		j = len(p.entries)
		p.idx[s] = j
		p.entries = append(p.entries, procEntry{src: s, dist: dist})
	}
	ent := &p.entries[j]
	if ent.rec == nil {
		// Only the probe column is cached. It is still current: no earlier
		// update of the batch affected this source. Vertices beyond its
		// length (mid-batch growth) read as unreachable, exactly how the
		// store pads grown records.
		if !p.affected(ent.dist, upd, directed) {
			return nil
		}
		p.distPool = append(p.distPool, ent.dist)
		ent.dist = nil
		return p.loadAndProcess(g, n, s, upd, acc)
	}
	// Fully cached: the record already reflects every earlier update of the
	// batch, so its distance column doubles as the probe.
	ent.rec.Resize(n)
	if !p.affected(ent.rec.Dist, upd, directed) {
		return nil
	}
	if UpdateSource(g, s, upd, ent.rec, acc, p.ws) {
		ent.dirty = true
		if p.OnSourceUpdated != nil {
			p.OnSourceUpdated(s, ent.rec, p.ws.dirty)
		}
	}
	p.updated.Add(1)
	return nil
}

// loadAndProcess loads the full record of an affected source into the cache
// and runs the per-source algorithm for upd.
func (p *SourceProcessor) loadAndProcess(g *graph.Graph, n, s int, upd graph.Update, acc Accumulator) error {
	rec := p.getRec()
	p.loads.Add(1)
	if err := p.store.Load(s, rec); err != nil {
		p.recPool = append(p.recPool, rec)
		return fmt.Errorf("incremental: loading source %d: %w", s, err)
	}
	rec.Resize(n)
	dirty := UpdateSource(g, s, upd, rec, acc, p.ws)
	if dirty && p.OnSourceUpdated != nil {
		p.OnSourceUpdated(s, rec, p.ws.dirty)
	}
	if j, ok := p.idx[s]; ok {
		ent := &p.entries[j]
		ent.rec = rec
		ent.dirty = dirty
	} else {
		p.idx[s] = len(p.entries)
		p.entries = append(p.entries, procEntry{src: s, rec: rec, dirty: dirty})
	}
	p.updated.Add(1)
	return nil
}

// ErrFlushFailed marks errors returned by Flush: the write-back cache could
// not be fully persisted, so the store may no longer match the in-memory
// state. Callers distinguish it (via errors.Is) from per-update validation
// rejections, which never corrupt anything.
var ErrFlushFailed = errors.New("incremental: batch flush failed")

// Flush writes every record modified since the last flush back to the store
// (at most one Save per source, regardless of how many updates of the batch
// touched it) and empties the cache. Every cached record is released even
// when a save fails; the first error is returned, wrapped in ErrFlushFailed.
func (p *SourceProcessor) Flush() error {
	var firstErr error
	for i := range p.entries {
		ent := &p.entries[i]
		if ent.dirty {
			p.saves.Add(1)
			if err := p.store.Save(ent.src, ent.rec); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("incremental: saving source %d: %w", ent.src, err)
			}
		}
		if ent.rec != nil {
			p.recPool = append(p.recPool, ent.rec)
			ent.rec = nil
		}
		if ent.dist != nil {
			p.distPool = append(p.distPool, ent.dist)
			ent.dist = nil
		}
	}
	p.entries = p.entries[:0]
	clear(p.idx)
	if firstErr != nil {
		return fmt.Errorf("%w: %w", ErrFlushFailed, firstErr)
	}
	return nil
}

// CachedSources returns how many sources the current (unflushed) batch has
// loaded into the write-back cache.
func (p *SourceProcessor) CachedSources() int { return len(p.entries) }

func (p *SourceProcessor) getRec() *bc.SourceState {
	if k := len(p.recPool); k > 0 {
		rec := p.recPool[k-1]
		p.recPool = p.recPool[:k-1]
		return rec
	}
	return bc.NewSourceState(0)
}

func (p *SourceProcessor) getDist() []int32 {
	if k := len(p.distPool); k > 0 {
		d := p.distPool[k-1]
		p.distPool = p.distPool[:k-1]
		return d
	}
	return nil
}

// ValidateUpdate checks that upd is applicable to g: self loops and negative
// endpoints are rejected, removals must name an existing edge, and additions
// must not duplicate one (endpoints beyond the current vertex range are
// allowed for additions — they grow the graph). It is shared by the
// sequential Updater and the parallel Engine.
func ValidateUpdate(g *graph.Graph, upd graph.Update) error {
	if upd.U == upd.V {
		return graph.ErrSelfLoop
	}
	if upd.U < 0 || upd.V < 0 {
		return fmt.Errorf("%w: negative vertex in %v", graph.ErrVertexRange, upd)
	}
	if upd.Remove {
		if !g.HasEdge(upd.U, upd.V) {
			return fmt.Errorf("%w: %v", graph.ErrMissingEdge, upd.Edge())
		}
		return nil
	}
	if upd.U < g.N() && upd.V < g.N() && g.HasEdge(upd.U, upd.V) {
		return fmt.Errorf("%w: %v", graph.ErrDuplicateEdge, upd.Edge())
	}
	return nil
}

// IsValidationError reports whether err is an update-validation rejection
// (self loop, vertex out of range, removing a missing edge, duplicating an
// existing one) as opposed to an infrastructure failure such as a store I/O
// error. Validation errors are raised before any state is mutated, so the
// offending update can simply be skipped; anything else means the engine's
// state can no longer be trusted.
func IsValidationError(err error) bool {
	return errors.Is(err, graph.ErrSelfLoop) ||
		errors.Is(err, graph.ErrVertexRange) ||
		errors.Is(err, graph.ErrMissingEdge) ||
		errors.Is(err, graph.ErrDuplicateEdge)
}

// GrowGraphAndResult extends the graph and the vertex betweenness slice to
// cover n vertices (new vertices join isolated, with zero centrality) and
// returns the previous vertex count. Callers register the new sources
// [old, n) with their store(s) afterwards. It is the store-independent half
// of the growth path shared by the Updater and the Engine.
func GrowGraphAndResult(g *graph.Graph, res *bc.Result, n int) (old int) {
	old = g.N()
	for g.N() < n {
		g.AddVertex()
	}
	for len(res.VBC) < n {
		res.VBC = append(res.VBC, 0)
	}
	return old
}
