// Package incremental implements the paper's primary contribution: online
// maintenance of vertex and edge betweenness centrality under a stream of
// edge additions and removals.
//
// For every source vertex s the framework keeps a betweenness-data record
// BD[s] holding, for every vertex t, its distance from s, the number of
// shortest paths from s and the dependency accumulated on t (the
// bc.SourceState type). When an edge is added or removed, each source is
// examined independently: the difference in the endpoints' distances (dd)
// classifies the update, sources that cannot be affected are skipped
// (Proposition 3.1), and for the remaining sources a partial forward pass
// recomputes distances and path counts only inside the affected region of the
// shortest-path DAG, followed by a partial dependency-accumulation pass that
// walks the region level by level, scanning neighbours instead of predecessor
// lists. The per-source changes are folded into the running vertex and edge
// betweenness scores.
//
// The per-source records are accessed through the Store interface so that
// they can live in memory (bdstore.MemStore) or on disk in the columnar
// binary layout of Section 5.1 (bdstore.DiskStore), and so that the source
// set can be partitioned across workers (internal/engine) exactly as in the
// paper's MapReduce embodiment.
package incremental
