package incremental

import (
	"sync"

	"streambc/internal/bc"
	"streambc/internal/graph"
)

// Workspace holds the reusable scratch buffers needed to process one source.
// All per-vertex arrays are version-stamped so that resetting the workspace
// between sources is O(1): a value is only meaningful when its stamp matches
// the current version, otherwise the old value from BD[s] applies.
//
// A Workspace is not safe for concurrent use; each worker owns one.
type Workspace struct {
	version uint64

	n int

	// New (tentative, then final) values of the current source update.
	dNew   []int32
	dStamp []uint64

	sigmaNew   []float64
	sigmaStamp []uint64

	deltaNew   []float64
	deltaStamp []uint64

	// Traversal state.
	forwardDone  []uint64 // vertex settled by the forward phase
	backwardDone []uint64 // vertex processed by the backward phase
	inScope      []uint64 // vertex belongs to the removal scope (old sub-DAG under uL)
	queuedAt     []uint64 // stamp-guard for backward seeding (value encodes version)

	// Level buckets shared by the forward and backward phases, laid out as a
	// flat arena: every push appends one (vertex, next) node to qv/qnext and
	// links it at the tail of its level's intrusive list, so an arbitrary
	// number of buckets shares two int32 columns instead of one slice header
	// (plus backing array) per level. Iteration follows the next links, which
	// reproduces the append-order (FIFO) semantics of the former [][]int
	// buckets exactly — including entries pushed into the level currently
	// being drained.
	heads     []int32 // first arena node of each level, -1 when empty
	tails     []int32 // last arena node of each level, -1 when empty
	qv        []int32 // arena: pushed vertex
	qnext     []int32 // arena: next node in the same level, -1 at the tail
	maxBucket int     // highest level pushed to in the current phase

	// Vertices whose distance or sigma changed in the forward phase.
	touched []int
	// isTouched is version-stamped membership of touched.
	isTouched []uint64

	// Vertices whose record must be written back to the store.
	dirty   []int
	isDirty []uint64

	// Unreachable vertices discovered by the forward phase of a removal.
	lost []int

	scopeList []int // removal scope as a list
}

// NewWorkspace returns a workspace for graphs of up to n vertices. It grows
// automatically if the graph grows.
func NewWorkspace(n int) *Workspace {
	ws := &Workspace{}
	ws.grow(n)
	return ws
}

// wsPool recycles workspaces across engine batches and replay paths; see
// AcquireWorkspace.
var wsPool = sync.Pool{New: func() any { return &Workspace{} }}

// AcquireWorkspace returns a pooled workspace grown to n vertices. Pooled
// workspaces keep their backing arrays between uses, so steady-state
// acquisition performs no allocations. Pair with ReleaseWorkspace.
func AcquireWorkspace(n int) *Workspace {
	ws := wsPool.Get().(*Workspace)
	ws.grow(n)
	return ws
}

// ReleaseWorkspace returns a workspace obtained from AcquireWorkspace to the
// pool. The caller must not use it afterwards.
func ReleaseWorkspace(ws *Workspace) {
	if ws != nil {
		wsPool.Put(ws)
	}
}

func (ws *Workspace) grow(n int) {
	if n <= ws.n {
		return
	}
	ws.n = n
	ws.dNew = growInt32(ws.dNew, n)
	ws.dStamp = growUint64(ws.dStamp, n)
	ws.sigmaNew = growFloat64(ws.sigmaNew, n)
	ws.sigmaStamp = growUint64(ws.sigmaStamp, n)
	ws.deltaNew = growFloat64(ws.deltaNew, n)
	ws.deltaStamp = growUint64(ws.deltaStamp, n)
	ws.forwardDone = growUint64(ws.forwardDone, n)
	ws.backwardDone = growUint64(ws.backwardDone, n)
	ws.inScope = growUint64(ws.inScope, n)
	ws.queuedAt = growUint64(ws.queuedAt, n)
	ws.isTouched = growUint64(ws.isTouched, n)
	ws.isDirty = growUint64(ws.isDirty, n)
}

// reset prepares the workspace for a new source of a graph with n vertices.
func (ws *Workspace) reset(n int) {
	ws.grow(n)
	ws.version++
	ws.touched = ws.touched[:0]
	ws.dirty = ws.dirty[:0]
	ws.lost = ws.lost[:0]
	ws.scopeList = ws.scopeList[:0]
	ws.clearBuckets()
}

// clearBuckets empties every level bucket used so far. It is called between
// the forward and backward phases of one source and when the workspace is
// reset.
func (ws *Workspace) clearBuckets() {
	for i := 0; i <= ws.maxBucket && i < len(ws.heads); i++ {
		ws.heads[i] = -1
		ws.tails[i] = -1
	}
	ws.qv = ws.qv[:0]
	ws.qnext = ws.qnext[:0]
	ws.maxBucket = 0
}

// push appends v to the level's bucket (arena tail insertion, FIFO order).
func (ws *Workspace) push(level int, v int) {
	for len(ws.heads) <= level {
		ws.heads = append(ws.heads, -1)
		ws.tails = append(ws.tails, -1)
	}
	if level > ws.maxBucket {
		ws.maxBucket = level
	}
	idx := int32(len(ws.qv))
	ws.qv = append(ws.qv, int32(v))
	ws.qnext = append(ws.qnext, -1)
	if t := ws.tails[level]; t >= 0 {
		ws.qnext[t] = idx
	} else {
		ws.heads[level] = idx
	}
	ws.tails[level] = idx
}

// head returns the first arena node of the level, or -1 when the level is
// empty or was never pushed to.
func (ws *Workspace) head(level int) int32 {
	if level < 0 || level >= len(ws.heads) {
		return -1
	}
	return ws.heads[level]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]int32, n)
	copy(out, s)
	return out
}

func growUint64(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]uint64, n)
	copy(out, s)
	return out
}

func growFloat64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]float64, n)
	copy(out, s)
	return out
}

// sourceUpdate bundles the state of one per-source update: the new graph, the
// old record, the workspace and the accumulator receiving the betweenness
// changes.
type sourceUpdate struct {
	g   *graph.Graph
	s   int
	rec *bc.SourceState
	acc Accumulator
	ws  *Workspace

	// Classification of the update being processed.
	kind   UpdateKind
	uH, uL int        // closer / farther endpoint w.r.t. the source
	updKey graph.Edge // canonical key of the updated edge
}

// Value accessors: the new value when stamped in this version, the old BD[s]
// value otherwise.

func (su *sourceUpdate) dist(v int) int32 {
	if su.ws.dStamp[v] == su.ws.version {
		return su.ws.dNew[v]
	}
	return su.rec.Dist[v]
}

func (su *sourceUpdate) setDist(v int, d int32) {
	su.ws.dNew[v] = d
	su.ws.dStamp[v] = su.ws.version
	su.markDirty(v)
}

func (su *sourceUpdate) sigma(v int) float64 {
	if su.ws.sigmaStamp[v] == su.ws.version {
		return su.ws.sigmaNew[v]
	}
	return su.rec.Sigma[v]
}

func (su *sourceUpdate) setSigma(v int, x float64) {
	su.ws.sigmaNew[v] = x
	su.ws.sigmaStamp[v] = su.ws.version
	su.markDirty(v)
}

func (su *sourceUpdate) delta(v int) float64 {
	if su.ws.deltaStamp[v] == su.ws.version {
		return su.ws.deltaNew[v]
	}
	return su.rec.Delta[v]
}

func (su *sourceUpdate) setDelta(v int, x float64) {
	su.ws.deltaNew[v] = x
	su.ws.deltaStamp[v] = su.ws.version
	su.markDirty(v)
}

func (su *sourceUpdate) markTouched(v int) {
	if su.ws.isTouched[v] != su.ws.version {
		su.ws.isTouched[v] = su.ws.version
		su.ws.touched = append(su.ws.touched, v)
	}
}

func (su *sourceUpdate) isTouched(v int) bool { return su.ws.isTouched[v] == su.ws.version }

func (su *sourceUpdate) markDirty(v int) {
	if su.ws.isDirty[v] != su.ws.version {
		su.ws.isDirty[v] = su.ws.version
		su.ws.dirty = append(su.ws.dirty, v)
	}
}
