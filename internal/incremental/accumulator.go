package incremental

import (
	"streambc/internal/bc"
	"streambc/internal/graph"
)

// Accumulator receives the betweenness changes produced while processing the
// sources affected by one update. The sequential Updater accumulates directly
// into its live result; the parallel engine accumulates into per-worker
// partial deltas that are merged by the reducer.
type Accumulator interface {
	// AddVBC adds delta to the vertex betweenness of v.
	AddVBC(v int, delta float64)
	// AddEBC adds delta to the edge betweenness of e (already canonicalised).
	AddEBC(e graph.Edge, delta float64)
}

// ResultAccumulator applies changes directly to a bc.Result.
type ResultAccumulator struct {
	Res *bc.Result
}

// AddVBC implements Accumulator.
func (a *ResultAccumulator) AddVBC(v int, delta float64) { a.Res.VBC[v] += delta }

// AddEBC implements Accumulator.
func (a *ResultAccumulator) AddEBC(e graph.Edge, delta float64) { a.Res.EBC[e] += delta }

// ScaledAccumulator multiplies every change by Scale before forwarding it to
// the wrapped accumulator. It is how the sampled-source approximate mode
// applies the n/k estimator scaling: the per-source records stay exact, only
// the contributions folded into the global scores are scaled.
type ScaledAccumulator struct {
	Acc   Accumulator
	Scale float64
}

// AddVBC implements Accumulator.
func (a *ScaledAccumulator) AddVBC(v int, delta float64) { a.Acc.AddVBC(v, a.Scale*delta) }

// AddEBC implements Accumulator.
func (a *ScaledAccumulator) AddEBC(e graph.Edge, delta float64) { a.Acc.AddEBC(e, a.Scale*delta) }

// Delta is a sparse set of betweenness changes, used as the unit of exchange
// between mappers and the reducer in the parallel engine (the partial
// betweenness values of Figure 4).
type Delta struct {
	VBC map[int]float64
	EBC map[graph.Edge]float64
}

// NewDelta returns an empty delta.
func NewDelta() *Delta {
	return &Delta{VBC: make(map[int]float64), EBC: make(map[graph.Edge]float64)}
}

// AddVBC implements Accumulator.
func (d *Delta) AddVBC(v int, delta float64) { d.VBC[v] += delta }

// AddEBC implements Accumulator.
func (d *Delta) AddEBC(e graph.Edge, delta float64) { d.EBC[e] += delta }

// Merge folds other into d.
func (d *Delta) Merge(other *Delta) {
	for v, x := range other.VBC {
		d.VBC[v] += x
	}
	for e, x := range other.EBC {
		d.EBC[e] += x
	}
}

// ApplyTo folds the delta into a full result. The result's VBC slice must
// already cover every vertex mentioned by the delta.
func (d *Delta) ApplyTo(res *bc.Result) {
	for v, x := range d.VBC {
		res.VBC[v] += x
	}
	for e, x := range d.EBC {
		res.EBC[e] += x
	}
}

// Reset clears the delta for reuse.
func (d *Delta) Reset() {
	clear(d.VBC)
	clear(d.EBC)
}
