package incremental

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/graph"
)

// relTol is the relative tolerance used when comparing incrementally
// maintained values against a fresh Brandes recomputation: the two follow
// different summation orders, so exact equality cannot be expected.
const relTol = 1e-7

func approx(a, b float64) bool {
	return math.Abs(a-b) <= relTol*(1+math.Abs(a)+math.Abs(b))
}

// checkAgainstBrandes verifies that the updater's running scores and every
// stored per-source record coincide with a from-scratch recomputation on the
// updater's current graph.
func checkAgainstBrandes(t *testing.T, u *Updater, context string) {
	t.Helper()
	g := u.Graph()
	want := bc.Compute(g)
	got := u.Result()

	for v := range want.VBC {
		if !approx(got.VBC[v], want.VBC[v]) {
			t.Fatalf("%s: VBC[%d] = %g, want %g", context, v, got.VBC[v], want.VBC[v])
		}
	}
	for _, e := range g.Edges() {
		key := bc.EdgeKey(g, e.U, e.V)
		if !approx(got.EBC[key], want.EBC[key]) {
			t.Fatalf("%s: EBC[%v] = %g, want %g", context, key, got.EBC[key], want.EBC[key])
		}
	}
	for key, val := range got.EBC {
		if !g.HasEdge(key.U, key.V) && !approx(val, 0) {
			t.Fatalf("%s: EBC entry %v=%g for a non-existent edge", context, key, val)
		}
	}

	// Per-source records must match a fresh single-source run.
	state := bc.NewSourceState(g.N())
	var queue []int
	rec := bc.NewSourceState(0)
	for s := 0; s < g.N(); s++ {
		bc.SingleSource(g, s, state, &queue)
		if err := u.Store().Load(s, rec); err != nil {
			t.Fatalf("%s: loading source %d: %v", context, s, err)
		}
		for v := 0; v < g.N(); v++ {
			if rec.Dist[v] != state.Dist[v] {
				t.Fatalf("%s: BD[%d].d[%d] = %d, want %d", context, s, v, rec.Dist[v], state.Dist[v])
			}
			if !approx(rec.Sigma[v], state.Sigma[v]) {
				t.Fatalf("%s: BD[%d].sigma[%d] = %g, want %g", context, s, v, rec.Sigma[v], state.Sigma[v])
			}
			if !approx(rec.Delta[v], state.Delta[v]) {
				t.Fatalf("%s: BD[%d].delta[%d] = %g, want %g", context, s, v, rec.Delta[v], state.Delta[v])
			}
		}
	}
}

func newMemUpdater(t *testing.T, g *graph.Graph) *Updater {
	t.Helper()
	u, err := NewUpdater(g, memStore(t, g.N()))
	if err != nil {
		t.Fatalf("NewUpdater: %v", err)
	}
	return u
}

// randomConnectedGraph builds an Erdős–Rényi style graph with an added
// Hamiltonian-ish backbone to keep most of it connected.
func randomConnectedGraph(t testing.TB, n int, extra int, seed int64, directed bool) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var g *graph.Graph
	if directed {
		g = graph.NewDirected(n)
	} else {
		g = graph.New(n)
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		addIgnoreDup(t, g, j, i)
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			addIgnoreDup(t, g, u, v)
		}
	}
	return g
}

func addIgnoreDup(t testing.TB, g *graph.Graph, u, v int) {
	t.Helper()
	if g.HasEdge(u, v) {
		return
	}
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func TestAdditionSequenceMatchesBrandes(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed * 101))
		n := 12 + rng.Intn(10)
		g := randomConnectedGraph(t, n, n/2, seed, false)
		u := newMemUpdater(t, g.Clone())

		for step := 0; step < 15; step++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b || u.Graph().HasEdge(a, b) {
				continue
			}
			if err := u.Apply(graph.Addition(a, b)); err != nil {
				t.Fatalf("seed %d step %d: Apply: %v", seed, step, err)
			}
			checkAgainstBrandes(t, u, fmt.Sprintf("seed %d addition step %d (%d,%d)", seed, step, a, b))
		}
	}
}

func TestRemovalSequenceMatchesBrandes(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed * 313))
		n := 12 + rng.Intn(8)
		g := randomConnectedGraph(t, n, n, seed, false)
		u := newMemUpdater(t, g.Clone())

		for step := 0; step < 15; step++ {
			edges := u.Graph().Edges()
			if len(edges) == 0 {
				break
			}
			e := edges[rng.Intn(len(edges))]
			if err := u.Apply(graph.Removal(e.U, e.V)); err != nil {
				t.Fatalf("seed %d step %d: Apply: %v", seed, step, err)
			}
			checkAgainstBrandes(t, u, fmt.Sprintf("seed %d removal step %d %v", seed, step, e))
		}
	}
}

func TestMixedSequenceMatchesBrandes(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 977))
		n := 10 + rng.Intn(8)
		g := randomConnectedGraph(t, n, n/3, seed, false)
		u := newMemUpdater(t, g.Clone())

		for step := 0; step < 25; step++ {
			if rng.Intn(2) == 0 {
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b || u.Graph().HasEdge(a, b) {
					continue
				}
				if err := u.Apply(graph.Addition(a, b)); err != nil {
					t.Fatalf("seed %d step %d add: %v", seed, step, err)
				}
			} else {
				edges := u.Graph().Edges()
				if len(edges) == 0 {
					continue
				}
				e := edges[rng.Intn(len(edges))]
				if err := u.Apply(graph.Removal(e.U, e.V)); err != nil {
					t.Fatalf("seed %d step %d remove: %v", seed, step, err)
				}
			}
			checkAgainstBrandes(t, u, fmt.Sprintf("seed %d mixed step %d", seed, step))
		}
	}
}

func TestDirectedSequencesMatchBrandes(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed * 555))
		n := 10 + rng.Intn(6)
		g := randomConnectedGraph(t, n, n, seed, true)
		u := newMemUpdater(t, g.Clone())

		for step := 0; step < 20; step++ {
			if rng.Intn(3) != 0 {
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b || u.Graph().HasEdge(a, b) {
					continue
				}
				if err := u.Apply(graph.Addition(a, b)); err != nil {
					t.Fatalf("seed %d step %d add: %v", seed, step, err)
				}
			} else {
				edges := u.Graph().Edges()
				if len(edges) == 0 {
					continue
				}
				e := edges[rng.Intn(len(edges))]
				if err := u.Apply(graph.Removal(e.U, e.V)); err != nil {
					t.Fatalf("seed %d step %d remove: %v", seed, step, err)
				}
			}
			checkAgainstBrandes(t, u, fmt.Sprintf("directed seed %d step %d", seed, step))
		}
	}
}

func TestDisconnectionAndReconnection(t *testing.T) {
	// Two triangles joined by a single bridge; removing the bridge must
	// disconnect them (Algorithm 10 path), re-adding it must restore the
	// original scores.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	u := newMemUpdater(t, g)

	if err := u.Apply(graph.Removal(2, 3)); err != nil {
		t.Fatalf("remove bridge: %v", err)
	}
	checkAgainstBrandes(t, u, "bridge removed")
	if !approx(u.VBC()[2], 0) {
		t.Fatalf("VBC[2] after disconnection = %g, want 0", u.VBC()[2])
	}

	if err := u.Apply(graph.Addition(2, 3)); err != nil {
		t.Fatalf("re-add bridge: %v", err)
	}
	checkAgainstBrandes(t, u, "bridge restored")
	if !approx(u.EBC()[graph.Edge{U: 2, V: 3}], 18) {
		t.Fatalf("bridge EBC = %g, want 18", u.EBC()[graph.Edge{U: 2, V: 3}])
	}
}

func TestLeafDetachAndSingleton(t *testing.T) {
	// Removing the only edge of a leaf turns it into a singleton.
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	u := newMemUpdater(t, g)
	if err := u.Apply(graph.Removal(2, 3)); err != nil {
		t.Fatalf("remove leaf edge: %v", err)
	}
	checkAgainstBrandes(t, u, "leaf detached")
	if !approx(u.VBC()[3], 0) {
		t.Fatalf("singleton VBC = %g, want 0", u.VBC()[3])
	}
}

func TestNewVertexArrival(t *testing.T) {
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	u := newMemUpdater(t, g)

	// Vertex 5 (and implicitly 4) arrive with the update stream.
	if err := u.Apply(graph.Addition(3, 5)); err != nil {
		t.Fatalf("add edge to new vertex: %v", err)
	}
	if u.Graph().N() != 6 {
		t.Fatalf("graph did not grow: n=%d", u.Graph().N())
	}
	checkAgainstBrandes(t, u, "new vertex attached")

	if err := u.Apply(graph.Addition(4, 5)); err != nil {
		t.Fatalf("connect remaining isolated vertex: %v", err)
	}
	checkAgainstBrandes(t, u, "second new vertex attached")
}

func TestSameLevelAdditionIsSkipped(t *testing.T) {
	// 0-1, 0-2: vertices 1 and 2 are both at distance 1 from 0 and distance
	// 1 from each other via 0... adding (1,2) changes nothing for source 0
	// (Proposition 3.1) but does change paths between 1 and 2.
	g := graph.New(3)
	for _, e := range [][2]int{{0, 1}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	u := newMemUpdater(t, g)
	if err := u.Apply(graph.Addition(1, 2)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	checkAgainstBrandes(t, u, "triangle closure")
	st := u.Stats()
	if st.SourcesSkipped == 0 {
		t.Fatalf("expected at least one skipped source, got stats %+v", st)
	}
}

func TestUpdateSourceSkipReturnsFalse(t *testing.T) {
	g := graph.New(3)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// From source 0, removing the same-level edge (1,2) must be a no-op.
	state := bc.NewSourceState(g.N())
	var queue []int
	bc.SingleSource(g, 0, state, &queue)
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(g.N())
	delta := NewDelta()
	if UpdateSource(g, 0, graph.Removal(1, 2), state, delta, ws) {
		t.Fatal("same-level removal must not modify the record")
	}
	if len(delta.VBC) != 0 || len(delta.EBC) != 0 {
		t.Fatalf("same-level removal produced deltas: %+v", delta)
	}
}

func TestApplyErrors(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	u := newMemUpdater(t, g)
	if err := u.Apply(graph.Addition(0, 0)); err == nil {
		t.Fatal("self loop must be rejected")
	}
	if err := u.Apply(graph.Addition(0, 1)); err == nil {
		t.Fatal("duplicate edge must be rejected")
	}
	if err := u.Apply(graph.Removal(1, 2)); err == nil {
		t.Fatal("removing a missing edge must be rejected")
	}
	if err := u.Apply(graph.Update{U: -1, V: 2}); err == nil {
		t.Fatal("negative vertex must be rejected")
	}
	// The updater must still be consistent after rejected updates.
	checkAgainstBrandes(t, u, "after rejected updates")
}

func TestApplyAllAndStats(t *testing.T) {
	g := randomConnectedGraph(t, 15, 10, 3, false)
	u := newMemUpdater(t, g.Clone())
	updates := []graph.Update{}
	rng := rand.New(rand.NewSource(5))
	tmp := g.Clone()
	for len(updates) < 8 {
		a, b := rng.Intn(15), rng.Intn(15)
		if a == b || tmp.HasEdge(a, b) {
			continue
		}
		if err := tmp.AddEdge(a, b); err != nil {
			t.Fatal(err)
		}
		updates = append(updates, graph.Addition(a, b))
	}
	applied, err := u.ApplyAll(updates)
	if err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	if applied != len(updates) {
		t.Fatalf("applied %d, want %d", applied, len(updates))
	}
	st := u.Stats()
	if st.UpdatesApplied != len(updates) {
		t.Fatalf("stats UpdatesApplied = %d, want %d", st.UpdatesApplied, len(updates))
	}
	if st.SourcesUpdated == 0 {
		t.Fatal("expected some sources to be updated")
	}
	checkAgainstBrandes(t, u, "after ApplyAll")

	// ApplyAll stops at the first error.
	bad := []graph.Update{graph.Addition(0, 0)}
	if _, err := u.ApplyAll(bad); err == nil {
		t.Fatal("expected error from invalid update")
	}
}

func TestDiskBackedUpdaterMatchesMemory(t *testing.T) {
	g := randomConnectedGraph(t, 14, 12, 11, false)
	memU := newMemUpdater(t, g.Clone())

	disk, err := bdstore.OpenV1(t.TempDir()+"/bd.bin", g.N(), nil)
	if err != nil {
		t.Fatalf("OpenV1: %v", err)
	}
	defer disk.Close()
	diskU, err := NewUpdater(g.Clone(), disk)
	if err != nil {
		t.Fatalf("NewUpdater(disk): %v", err)
	}

	rng := rand.New(rand.NewSource(17))
	for step := 0; step < 12; step++ {
		var upd graph.Update
		if rng.Intn(2) == 0 {
			a, b := rng.Intn(g.N()), rng.Intn(g.N())
			if a == b || memU.Graph().HasEdge(a, b) {
				continue
			}
			upd = graph.Addition(a, b)
		} else {
			edges := memU.Graph().Edges()
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			upd = graph.Removal(e.U, e.V)
		}
		if err := memU.Apply(upd); err != nil {
			t.Fatalf("mem apply %v: %v", upd, err)
		}
		if err := diskU.Apply(upd); err != nil {
			t.Fatalf("disk apply %v: %v", upd, err)
		}
	}
	checkAgainstBrandes(t, diskU, "disk-backed updater")
	for v := range memU.VBC() {
		if !approx(memU.VBC()[v], diskU.VBC()[v]) {
			t.Fatalf("mem and disk VBC differ at %d: %g vs %g", v, memU.VBC()[v], diskU.VBC()[v])
		}
	}
}

func TestNewUpdaterStoreMismatch(t *testing.T) {
	g := graph.New(5)
	if _, err := NewUpdater(g, memStore(t, 3)); err == nil {
		t.Fatal("expected error for store/graph size mismatch")
	}
}

func TestAffectedClassification(t *testing.T) {
	// Path 0-1-2-3, distances from source 0 are 0,1,2,3.
	dist := []int32{0, 1, 2, 3, bc.Unreachable}

	cases := []struct {
		name     string
		upd      graph.Update
		directed bool
		want     bool
	}{
		{"same level addition", graph.Addition(1, 1), false, false},
		{"dd=1 addition", graph.Addition(0, 2), false, true},
		{"dd>1 addition", graph.Addition(0, 3), false, true},
		{"addition to unreachable", graph.Addition(1, 4), false, true},
		{"addition between unreachables", graph.Addition(4, 4), false, false},
		{"removal of dag edge", graph.Removal(1, 2), false, true},
		{"removal reversed order", graph.Removal(2, 1), false, true},
		{"directed addition backwards", graph.Addition(3, 0), true, false},
		{"directed addition forwards", graph.Addition(0, 3), true, true},
		{"directed removal non-dag", graph.Removal(3, 0), true, false},
	}
	for _, tc := range cases {
		if got := Affected(dist, tc.upd, tc.directed); got != tc.want {
			t.Errorf("%s: Affected = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDeltaAccumulatorMergeAndApply(t *testing.T) {
	a, b := NewDelta(), NewDelta()
	a.AddVBC(1, 2)
	a.AddEBC(graph.Edge{U: 0, V: 1}, 1.5)
	b.AddVBC(1, 3)
	b.AddVBC(2, -1)
	b.AddEBC(graph.Edge{U: 0, V: 1}, 0.5)
	a.Merge(b)
	if a.VBC[1] != 5 || a.VBC[2] != -1 || a.EBC[graph.Edge{U: 0, V: 1}] != 2 {
		t.Fatalf("merge result wrong: %+v", a)
	}
	res := bc.NewResult(3)
	a.ApplyTo(res)
	if res.VBC[1] != 5 || res.EBC[graph.Edge{U: 0, V: 1}] != 2 {
		t.Fatalf("ApplyTo result wrong: %+v", res)
	}
	a.Reset()
	if len(a.VBC) != 0 || len(a.EBC) != 0 {
		t.Fatal("Reset did not clear the delta")
	}
}
