package incremental

import (
	"fmt"
	"math/rand"
	"testing"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/graph"
)

// mixedScript builds a deterministic add/remove script against g (not
// mutated), optionally ending each third with an edge to a brand-new vertex
// so the store has to Grow mid-stream.
func mixedScript(t *testing.T, g *graph.Graph, steps int, seed int64, withGrowth bool) []graph.Update {
	t.Helper()
	sim := g.Clone()
	rng := rand.New(rand.NewSource(seed))
	var script []graph.Update
	for len(script) < steps {
		if withGrowth && len(script) > 0 && len(script)%(steps/3+1) == 0 {
			u := rng.Intn(sim.N())
			upd := graph.Addition(u, sim.N())
			if err := sim.Apply(upd); err != nil {
				t.Fatalf("growth apply: %v", err)
			}
			script = append(script, upd)
			continue
		}
		if rng.Intn(2) == 0 {
			a, b := rng.Intn(sim.N()), rng.Intn(sim.N())
			if a == b || sim.HasEdge(a, b) {
				continue
			}
			if err := sim.AddEdge(a, b); err != nil {
				t.Fatal(err)
			}
			script = append(script, graph.Addition(a, b))
		} else {
			edges := sim.Edges()
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			if err := sim.RemoveEdge(e.U, e.V); err != nil {
				t.Fatal(err)
			}
			script = append(script, graph.Removal(e.U, e.V))
		}
	}
	return script
}

// requireExactlyEqual asserts bit-identical scores and stored records
// between two updaters over the same script.
func requireExactlyEqual(t *testing.T, ctx string, ref, got *Updater) {
	t.Helper()
	if ref.Graph().N() != got.Graph().N() {
		t.Fatalf("%s: graphs diverged: %d vs %d vertices", ctx, ref.Graph().N(), got.Graph().N())
	}
	for v := range ref.VBC() {
		if ref.VBC()[v] != got.VBC()[v] {
			t.Fatalf("%s: VBC[%d] = %v, want exactly %v", ctx, v, got.VBC()[v], ref.VBC()[v])
		}
	}
	if len(ref.EBC()) != len(got.EBC()) {
		t.Fatalf("%s: EBC size %d, want %d", ctx, len(got.EBC()), len(ref.EBC()))
	}
	for k, want := range ref.EBC() {
		if g := got.EBC()[k]; g != want {
			t.Fatalf("%s: EBC[%v] = %v, want exactly %v", ctx, k, g, want)
		}
	}
	a, b := bc.NewSourceState(0), bc.NewSourceState(0)
	for _, s := range ref.Store().Sources() {
		if err := ref.Store().Load(s, a); err != nil {
			t.Fatalf("%s: ref load %d: %v", ctx, s, err)
		}
		if err := got.Store().Load(s, b); err != nil {
			t.Fatalf("%s: load %d: %v", ctx, s, err)
		}
		for v := range a.Dist {
			if a.Dist[v] != b.Dist[v] || a.Sigma[v] != b.Sigma[v] || a.Delta[v] != b.Delta[v] {
				t.Fatalf("%s: BD[%d] differs at vertex %d", ctx, s, v)
			}
		}
	}
}

// TestShardedUpdaterBitIdenticalToMem replays the same script — including
// vertex growth — on a memory-backed and a sharded v2-backed updater, with
// both read paths, and requires bit-identical scores and records throughout.
func TestShardedUpdaterBitIdenticalToMem(t *testing.T) {
	for _, disableMmap := range []bool{false, true} {
		g := randomConnectedGraph(t, 14, 12, 23, false)
		script := mixedScript(t, g, 18, 24, true)

		ref := newMemUpdater(t, g.Clone())
		store := shardedStore(t, g.N(), bdstore.Options{SegmentRecords: 4, DisableMmap: disableMmap})
		u, err := NewUpdater(g.Clone(), store)
		if err != nil {
			t.Fatalf("NewUpdater(sharded): %v", err)
		}
		for i, upd := range script {
			if err := ref.Apply(upd); err != nil {
				t.Fatalf("mem apply %d (%v): %v", i, upd, err)
			}
			if err := u.Apply(upd); err != nil {
				t.Fatalf("sharded apply %d (%v): %v", i, upd, err)
			}
			requireExactlyEqual(t, fmt.Sprintf("mmapOff=%v step %d", disableMmap, i), ref, u)
		}
		checkAgainstBrandes(t, u, "sharded-backed updater")
		if err := store.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// TestShardedReopenMidScriptExact closes the sharded store halfway through a
// script (with growth in the first half), reopens it with ModeReopen, resumes
// with ResumeUpdater and requires the remainder of the replay to stay
// bit-identical to an uninterrupted memory-backed run.
func TestShardedReopenMidScriptExact(t *testing.T) {
	g := randomConnectedGraph(t, 13, 11, 31, false)
	script := mixedScript(t, g, 16, 32, true)
	half := len(script) / 2

	ref := newMemUpdater(t, g.Clone())
	dir := t.TempDir()
	store, err := bdstore.Open(dir, bdstore.Options{NumVertices: g.N(), SegmentRecords: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	u, err := NewUpdater(g.Clone(), store)
	if err != nil {
		t.Fatalf("NewUpdater: %v", err)
	}
	for i, upd := range script[:half] {
		if err := ref.Apply(upd); err != nil {
			t.Fatalf("ref apply %d: %v", i, err)
		}
		if err := u.Apply(upd); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}

	// Close mid-stream (flushes the stage), reopen, adopt graph and result.
	liveGraph, liveRes := u.Graph(), u.Result()
	if err := store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	reopened, err := bdstore.Open(dir, bdstore.Options{Mode: bdstore.ModeReopen})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	ru, err := ResumeUpdater(liveGraph, reopened, liveRes)
	if err != nil {
		t.Fatalf("ResumeUpdater: %v", err)
	}
	if ru.Scale() != 1 || ru.Sources() != nil {
		t.Fatalf("resumed exact updater reports scale=%v sources=%v", ru.Scale(), ru.Sources())
	}

	for i, upd := range script[half:] {
		if err := ref.Apply(upd); err != nil {
			t.Fatalf("ref apply %d: %v", half+i, err)
		}
		if err := ru.Apply(upd); err != nil {
			t.Fatalf("resumed apply %d: %v", half+i, err)
		}
	}
	requireExactlyEqual(t, "after resumed replay", ref, ru)
	checkAgainstBrandes(t, ru, "resumed sharded updater")
}

// TestShardedReopenMidScriptSampled is the approximate-mode variant: a
// sampled updater over a sharded store survives a close-and-reopen with the
// recovered source set and the same n/k scale, bit-identical to an
// uninterrupted sampled run on a memory store.
func TestShardedReopenMidScriptSampled(t *testing.T) {
	g := randomConnectedGraph(t, 20, 16, 41, false)
	script := mixedScript(t, g, 14, 42, false)
	half := len(script) / 2
	n := g.N()
	sources := bc.SampleSources(n, 7, 3)

	refStore := bdstore.NewMemStoreForSources(n, sources)
	ref, err := NewSampledUpdater(g.Clone(), refStore, 0)
	if err != nil {
		t.Fatalf("NewSampledUpdater(mem): %v", err)
	}
	dir := t.TempDir()
	store, err := bdstore.Open(dir, bdstore.Options{NumVertices: n, Sources: sources, SegmentRecords: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	u, err := NewSampledUpdater(g.Clone(), store, 0)
	if err != nil {
		t.Fatalf("NewSampledUpdater(sharded): %v", err)
	}
	for i, upd := range script[:half] {
		if err := ref.Apply(upd); err != nil {
			t.Fatalf("ref apply %d: %v", i, err)
		}
		if err := u.Apply(upd); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}

	liveGraph, liveRes := u.Graph(), u.Result()
	if err := store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	reopened, err := bdstore.Open(dir, bdstore.Options{Mode: bdstore.ModeReopen})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	ru, err := ResumeUpdater(liveGraph, reopened, liveRes)
	if err != nil {
		t.Fatalf("ResumeUpdater: %v", err)
	}
	if got := ru.Sources(); len(got) != len(sources) {
		t.Fatalf("resumed sources = %v, want %v", got, sources)
	}
	if ru.Scale() != ref.Scale() {
		t.Fatalf("resumed scale = %v, want %v", ru.Scale(), ref.Scale())
	}

	for i, upd := range script[half:] {
		if err := ref.Apply(upd); err != nil {
			t.Fatalf("ref apply %d: %v", half+i, err)
		}
		if err := ru.Apply(upd); err != nil {
			t.Fatalf("resumed apply %d: %v", half+i, err)
		}
	}
	requireExactlyEqual(t, "after resumed sampled replay", ref, ru)
}
