package streambc

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-7*(1+math.Abs(a)+math.Abs(b)) }

func buildPath(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestStreamMatchesStaticBetweenness(t *testing.T) {
	g := GenerateSocialGraph(120, 3, 0.5, 1)
	updates, err := MixedUpdates(g, 25, 0.4, 2)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(g.Clone(), WithWorkers(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if s.Workers() != 2 {
		t.Fatalf("Workers = %d", s.Workers())
	}
	if n, err := s.ApplyAll(updates); err != nil || n != len(updates) {
		t.Fatalf("ApplyAll: n=%d err=%v", n, err)
	}

	want := Betweenness(s.Graph())
	got := s.Result()
	for v := range want.VBC {
		if !approx(got.VBC[v], want.VBC[v]) {
			t.Fatalf("VBC[%d] = %g, want %g", v, got.VBC[v], want.VBC[v])
		}
	}
	st := s.Stats()
	if st.UpdatesApplied != len(updates) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStreamWithDiskStore(t *testing.T) {
	g := GenerateRandomGraph(60, 150, 3)
	s, err := New(g.Clone(), WithWorkers(2), WithDiskStore(t.TempDir()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	files, err := s.DiskFiles()
	if err != nil {
		t.Fatalf("DiskFiles: %v", err)
	}
	// Two workers, each backed by a sharded store: one MANIFEST plus at
	// least one segment file per worker directory.
	segWorkers := map[string]bool{}
	manifests := 0
	for _, f := range files {
		switch {
		case strings.HasSuffix(f, ".bds"):
			// dir/worker-NNN/<shard>/seg-*.bds -> dir/worker-NNN
			segWorkers[filepath.Dir(filepath.Dir(f))] = true
		case filepath.Base(f) == "MANIFEST":
			manifests++
		}
	}
	if manifests != 2 || len(segWorkers) != 2 {
		t.Fatalf("DiskFiles = %v, want a MANIFEST and segments for each of 2 workers", files)
	}
	adds, err := RandomAdditions(s.Graph(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyAll(adds); err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	want := Betweenness(s.Graph())
	for v := range want.VBC {
		if !approx(s.VBC()[v], want.VBC[v]) {
			t.Fatalf("VBC[%d] mismatch", v)
		}
	}
}

func TestAccessorsOnPath(t *testing.T) {
	s, err := New(buildPath(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Path 0-1-2-3-4: centre vertex 2 has VBC 2*2*2=8; edge (2,3) has EBC 2*3*2=12.
	if !approx(s.VertexBetweenness(2), 8) {
		t.Fatalf("VertexBetweenness(2) = %g, want 8", s.VertexBetweenness(2))
	}
	if !approx(s.EdgeBetweenness(2, 3), 12) {
		t.Fatalf("EdgeBetweenness(2,3) = %g, want 12", s.EdgeBetweenness(2, 3))
	}
	if s.VertexBetweenness(99) != 0 || s.EdgeBetweenness(0, 4) != 0 {
		t.Fatal("out-of-range accessors must return 0")
	}
	top := s.TopVertices(2)
	if len(top) != 2 || top[0].Vertex != 2 {
		t.Fatalf("TopVertices = %v", top)
	}
	edges := s.TopEdges(1)
	if len(edges) != 1 || edges[0].Edge.Canonical() != (Edge{U: 1, V: 2}).Canonical() && edges[0].Edge.Canonical() != (Edge{U: 2, V: 3}).Canonical() {
		t.Fatalf("TopEdges = %v", edges)
	}
	if len(s.TopVertices(100)) != 5 {
		t.Fatal("TopVertices must clamp k")
	}
	if len(s.TopVertices(-1)) != 0 {
		t.Fatal("negative k must yield empty result")
	}
	if files, err := s.DiskFiles(); err != nil || files != nil {
		t.Fatal("memory-backed stream must report no disk files")
	}
}

func TestStreamGrowsWithNewVertices(t *testing.T) {
	s, err := New(buildPath(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Apply(Addition(2, 5)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if s.Graph().N() != 6 {
		t.Fatalf("graph did not grow: %d", s.Graph().N())
	}
	want := Betweenness(s.Graph())
	for v := range want.VBC {
		if !approx(s.VBC()[v], want.VBC[v]) {
			t.Fatalf("VBC[%d] = %g want %g", v, s.VBC()[v], want.VBC[v])
		}
	}
}

func TestReplayThroughPublicAPI(t *testing.T) {
	g := GenerateSocialGraph(80, 3, 0.4, 5)
	adds, err := RandomAdditions(g, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	stream := TimestampUpdates(adds, 5, 0.1, 3)
	s, err := New(g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Replay(stream)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Updates != len(stream) {
		t.Fatalf("report = %+v", rep)
	}
}

func TestBetweennessParallelAgrees(t *testing.T) {
	g := GenerateRandomGraph(70, 180, 9)
	a := Betweenness(g)
	b := BetweennessParallel(g, 3)
	for v := range a.VBC {
		if !approx(a.VBC[v], b.VBC[v]) {
			t.Fatalf("VBC[%d] differs", v)
		}
	}
}

func TestDetectCommunitiesPublicAPI(t *testing.T) {
	g, truth := GenerateCommunityGraph(2, 10, 0.9, 0.02, 7)
	res, err := DetectCommunities(g, CommunityOptions{TargetCommunities: 2})
	if err != nil {
		t.Fatalf("DetectCommunities: %v", err)
	}
	if res.BestModularity < 0.3 {
		t.Fatalf("modularity = %g", res.BestModularity)
	}
	_ = truth
	// The recompute baseline should find the same split on this easy case.
	res2, err := DetectCommunities(g, CommunityOptions{TargetCommunities: 2, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.BestModularity < 0.3 {
		t.Fatalf("recompute modularity = %g", res2.BestModularity)
	}
}

func TestPublicErrorPropagation(t *testing.T) {
	s, err := New(buildPath(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Apply(Addition(1, 1)); err == nil {
		t.Fatal("self loop must be rejected")
	}
	if err := s.Apply(Removal(0, 3)); err == nil {
		t.Fatal("removing a missing edge must be rejected")
	}
	if _, err := RandomRemovals(NewGraph(3), 5, 1); err == nil {
		t.Fatal("expected error for too many removals")
	}
}

func TestEncodeDecodeUpdateAPI(t *testing.T) {
	upds := []Update{Addition(1, 2), Removal(3, 4), {U: 5, V: 6, Time: 2.5}}
	var buf []byte
	for _, u := range upds {
		buf = EncodeUpdate(buf, u)
	}
	for _, want := range upds {
		got, n, err := DecodeUpdate(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("got %v, want %v", got, want)
		}
		buf = buf[n:]
	}
	if _, _, err := DecodeUpdate([]byte{0xff}); !errors.Is(err, ErrBadUpdateWire) {
		t.Fatalf("got %v, want ErrBadUpdateWire", err)
	}
}
