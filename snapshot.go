package streambc

import (
	"io"

	"streambc/internal/engine"
)

// Snapshot serialises the stream's externally visible state to w: the
// evolving graph, the applied-update offset and the current vertex/edge
// betweenness scores, followed by a CRC-32 checksum. The per-source
// betweenness data is not serialised; Restore regenerates it with one offline
// initialisation pass. The caller must ensure no Apply runs concurrently.
func (s *Stream) Snapshot(w io.Writer) error { return engine.WriteSnapshot(w, s.eng) }

// Restore rebuilds a Stream from a snapshot written by Snapshot. The graph
// and the applied-update offset round-trip exactly, and the betweenness
// scores returned by queries are bit-identical to the ones served when the
// snapshot was taken. The options have the same meaning as in New, and need
// not match the ones the snapshotted stream was created with (a snapshot
// taken from an in-memory single-worker stream can be restored into an
// out-of-core multi-worker one).
//
// A snapshot taken in sampled mode (WithSampledSources) records its source
// sample and estimator scale, and they take precedence over any
// WithSampledSources option passed here: the snapshotted scores are only
// coherent with the sample they were accumulated over. Conversely, restoring
// an exact snapshot with WithSampledSources switches the stream to
// approximate maintenance from this point on (the restored scores start
// exact and future updates are applied as sampled estimates).
func Restore(r io.Reader, opts ...Option) (*Stream, error) {
	st, err := engine.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	cfg, econf, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if st.Sources == nil {
		// RestoreEngine overrides the sample with the snapshot's when the
		// snapshot carries one, so drawing a fresh sample only matters here.
		if err := applySampling(&econf, cfg, st.Graph.N()); err != nil {
			return nil, err
		}
	}
	eng, err := engine.RestoreEngine(st, econf)
	if err != nil {
		return nil, err
	}
	return &Stream{eng: eng, diskDir: cfg.diskDir}, nil
}
