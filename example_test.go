package streambc_test

import (
	"bytes"
	"fmt"

	"streambc"
)

// The offline initialisation runs one Brandes pass; afterwards every Apply
// brings the scores up to date incrementally.
func ExampleNew() {
	g := streambc.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)

	s, err := streambc.New(g)
	if err != nil {
		panic(err)
	}
	defer s.Close()

	s.Apply(streambc.Addition(0, 3)) // close the path into a cycle
	fmt.Println(s.VBC())
	// Output: [1 1 1 1]
}

// ApplyBatch applies a whole batch in stream order with one store load/save
// per affected source; the scores are bit-identical to sequential Apply.
func ExampleStream_ApplyBatch() {
	g := streambc.NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)

	s, err := streambc.New(g)
	if err != nil {
		panic(err)
	}
	defer s.Close()

	applied, err := s.ApplyBatch([]streambc.Update{
		streambc.Addition(2, 3),
		streambc.Addition(3, 4),
		streambc.Removal(1, 2),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(applied, s.Graph().M())
	// Output: 3 3
}

// A snapshot serialises the graph, the applied-update offset and the scores;
// Restore rebuilds a stream whose queries are bit-identical.
func ExampleStream_Snapshot() {
	g := streambc.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)

	s, err := streambc.New(g)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	s.Apply(streambc.Addition(0, 2))

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		panic(err)
	}
	r, err := streambc.Restore(&buf)
	if err != nil {
		panic(err)
	}
	defer r.Close()

	fmt.Println(r.Stats().UpdatesApplied, r.VertexBetweenness(2) == s.VertexBetweenness(2))
	// Output: 1 true
}

// WithSampledSources trades accuracy for speed and memory: only k sampled
// sources are maintained and every contribution is scaled by n/k, so the
// scores become unbiased estimates.
func ExampleWithSampledSources() {
	g := streambc.NewGraph(12)
	for i := 0; i < 12; i++ {
		g.AddEdge(i, (i+1)%12) // a 12-cycle
	}

	s, err := streambc.New(g, streambc.WithSampledSources(6, 1))
	if err != nil {
		panic(err)
	}
	defer s.Close()

	s.Apply(streambc.Addition(0, 6))
	fmt.Println(len(s.SampledSources()), s.SampleScale())
	// Output: 6 2
}
