module streambc

go 1.23
