module streambc

go 1.24
