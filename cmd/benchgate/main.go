// Command benchgate is the CI benchmark regression gate: it parses the
// output of `go test -bench` from stdin, aggregates repeated runs (-count)
// by taking the fastest ns/op and lowest allocs/op per benchmark (the
// standard noise-robust reduction), writes the result as a JSON report and —
// when a baseline file is given — fails with exit status 1 if any baseline
// benchmark regressed by more than the allowed fraction or disappeared.
//
// Allocation counts are advisory (warn-only) for most benchmarks, but hard
// for the ones matching -alloc-gate: allocs/op is deterministic there —
// unlike wall-clock it does not move with runner noise — so a regression
// past -max-alloc-regress fails the gate exactly like a ns/op regression.
// The default pattern pins the disk-replay hot path and the v1-vs-v2
// store pair, whose allocation behaviour the flat-memory kernel and the
// store's pooled write-back stage guarantee.
//
// Usage:
//
//	go test -run NONE -bench 'DiskReplay|DiskStore|PipelineApply' -benchtime=3x -count=3 -benchmem ./... \
//	    | go run ./cmd/benchgate -baseline BENCH_baseline.json -out BENCH_PR4.json -max-regress 0.25
//
// Refreshing the committed baseline after an intentional performance change:
//
//	go test -run NONE -bench 'DiskReplay|DiskStore|PipelineApply' -benchtime=3x -count=3 -benchmem ./... \
//	    | go run ./cmd/benchgate -out BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is the aggregated measurement of one benchmark.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Runs        int     `json:"runs"`
}

// Report is the JSON document exchanged between runs. MemWarnings carries
// the warn-only allocation deltas of a gated run into the artifact; it is
// absent from baseline reports (which are produced without -baseline).
type Report struct {
	Benchmarks  map[string]Result `json:"benchmarks"`
	MemWarnings []string          `json:"mem_warnings,omitempty"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkDiskReplayApplyBatch16-8   3   1234567 ns/op   4096 B/op   12 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so reports compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9]+) allocs/op)?`)

func main() {
	var (
		out        = flag.String("out", "", "write the aggregated JSON report to this file")
		baseline   = flag.String("baseline", "", "baseline JSON report to gate against (no gating when empty)")
		maxRegress = flag.Float64("max-regress", 0.25, "maximum tolerated ns/op regression as a fraction of the baseline")
		memWarn    = flag.Float64("mem-warn", 0.25, "allocs/op or B/op growth fraction above which a warning (never a failure) is emitted")
		allocGate  = flag.String("alloc-gate", "^BenchmarkDisk(Replay|Store)", "regexp of benchmarks whose allocs/op regression past -max-alloc-regress is a hard failure (empty disables)")
		maxAllocs  = flag.Float64("max-alloc-regress", 0.25, "maximum tolerated allocs/op regression for -alloc-gate benchmarks")
	)
	flag.Parse()

	var allocGateRe *regexp.Regexp
	if *allocGate != "" {
		re, err := regexp.Compile(*allocGate)
		if err != nil {
			fatal(fmt.Errorf("bad -alloc-gate pattern: %w", err))
		}
		allocGateRe = re
	}

	report, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results on stdin"))
	}
	var base *Report
	if *baseline != "" {
		if base, err = readReport(*baseline); err != nil {
			fatal(err)
		}
		// Allocation counts are advisory for most benchmarks (an intentional
		// buffering change can trade bytes for speed); the deltas ride along
		// in the artifact so reviewers see them without rerunning. The
		// -alloc-gate benchmarks are excluded here — their allocs/op failures
		// come from gate() instead.
		report.MemWarnings = memDeltas(base, report, *memWarn, allocGateRe)
	}
	if *out != "" {
		if err := writeReport(*out, report); err != nil {
			fatal(err)
		}
	}
	printReport(report)
	if base == nil {
		return
	}
	for _, w := range report.MemWarnings {
		fmt.Fprintln(os.Stderr, "benchgate: WARN:", w)
	}
	if failures := gate(base, report, *maxRegress, allocGateRe, *maxAllocs); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of baseline %s\n",
		len(base.Benchmarks), *maxRegress*100, *baseline)
}

// parse reads `go test -bench` output and aggregates repeated runs.
func parse(f *os.File) (*Report, error) {
	report := &Report{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
		}
		var bytes, allocs int64
		if m[3] != "" {
			b, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
			bytes = int64(b)
		}
		if m[4] != "" {
			if allocs, err = strconv.ParseInt(m[4], 10, 64); err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
		}
		cur, seen := report.Benchmarks[name]
		if !seen {
			report.Benchmarks[name] = Result{NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes, Runs: 1}
			continue
		}
		cur.Runs++
		if ns < cur.NsPerOp {
			cur.NsPerOp = ns
		}
		if allocs < cur.AllocsPerOp {
			cur.AllocsPerOp = allocs
		}
		if bytes < cur.BytesPerOp {
			cur.BytesPerOp = bytes
		}
		report.Benchmarks[name] = cur
	}
	return report, sc.Err()
}

// gate compares cur against base: every baseline benchmark must be present
// and within (1+maxRegress) of its baseline ns/op; benchmarks matching
// allocGate must additionally stay within (1+maxAllocs) of their baseline
// allocs/op. Benchmarks only in cur are reported but never gate (they have
// no baseline yet).
func gate(base, cur *Report, maxRegress float64, allocGate *regexp.Regexp, maxAllocs float64) []string {
	var failures []string
	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from this run (baseline %.0f ns/op)", name, b.NsPerOp))
			continue
		}
		if b.NsPerOp > 0 {
			ratio := c.NsPerOp/b.NsPerOp - 1
			if ratio > maxRegress {
				failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (+%.1f%%, limit +%.0f%%)",
					name, c.NsPerOp, b.NsPerOp, ratio*100, maxRegress*100))
			}
		}
		if allocGate != nil && allocGate.MatchString(name) && b.AllocsPerOp > 0 {
			ratio := float64(c.AllocsPerOp)/float64(b.AllocsPerOp) - 1
			if ratio > maxAllocs {
				failures = append(failures, fmt.Sprintf("%s: %d allocs/op vs baseline %d allocs/op (+%.1f%%, limit +%.0f%%)",
					name, c.AllocsPerOp, b.AllocsPerOp, ratio*100, maxAllocs*100))
			}
		}
	}
	return failures
}

// memDeltas reports baseline benchmarks whose allocs/op or B/op grew by more
// than warnFrac. Purely informational for everything outside allocGate
// (whose allocs/op failures gate() raises instead): memory numbers from
// -benchmem are stable enough to surface but too workload-sensitive to gate
// on everywhere.
func memDeltas(base, cur *Report, warnFrac float64, allocGate *regexp.Regexp) []string {
	var warnings []string
	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			continue // gate() already fails the run for the missing benchmark
		}
		if b.AllocsPerOp > 0 && (allocGate == nil || !allocGate.MatchString(name)) {
			if ratio := float64(c.AllocsPerOp)/float64(b.AllocsPerOp) - 1; ratio > warnFrac {
				warnings = append(warnings, fmt.Sprintf("%s: %d allocs/op vs baseline %d (+%.1f%%)",
					name, c.AllocsPerOp, b.AllocsPerOp, ratio*100))
			}
		}
		if b.BytesPerOp > 0 {
			if ratio := float64(c.BytesPerOp)/float64(b.BytesPerOp) - 1; ratio > warnFrac {
				warnings = append(warnings, fmt.Sprintf("%s: %d B/op vs baseline %d (+%.1f%%)",
					name, c.BytesPerOp, b.BytesPerOp, ratio*100))
			}
		}
	}
	return warnings
}

func printReport(r *Report) {
	for _, name := range sortedNames(r.Benchmarks) {
		b := r.Benchmarks[name]
		fmt.Printf("benchgate: %-45s %14.0f ns/op %10d B/op %8d allocs/op (%d runs)\n",
			name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp, b.Runs)
	}
}

func sortedNames(m map[string]Result) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func readReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &r, nil
}

func writeReport(path string, r *Report) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}
