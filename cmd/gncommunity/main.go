// Command gncommunity runs Girvan-Newman community detection driven by
// incrementally maintained edge betweenness (the use case of Section 6.3).
//
// Examples:
//
//	gncommunity -preset 1k -target 8
//	gncommunity -graph graph.txt -max-removals 200
//	gncommunity -graph graph.txt -target 4 -recompute   # Brandes-per-removal baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streambc"
	"streambc/internal/gen"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "edge-list file of the graph")
		preset      = flag.String("preset", "", "generate one of the dataset presets instead of loading a file")
		seed        = flag.Int64("seed", 42, "random seed for -preset")
		target      = flag.Int("target", 0, "stop once the graph splits into this many communities (0 = keep going)")
		maxRemovals = flag.Int("max-removals", 0, "maximum number of edges to remove (0 = no bound)")
		recompute   = flag.Bool("recompute", false, "recompute betweenness with Brandes after every removal (baseline)")
		show        = flag.Int("show", 10, "print at most this many communities")
	)
	flag.Parse()

	var g *streambc.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = streambc.LoadEdgeListFile(*graphPath, false)
	case *preset != "":
		g, err = gen.BuildPreset(*preset, *seed)
	default:
		err = fmt.Errorf("need -graph or -preset")
	}
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	res, err := streambc.DetectCommunities(g, streambc.CommunityOptions{
		TargetCommunities: *target,
		MaxRemovals:       *maxRemovals,
		Recompute:         *recompute,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	method := "incremental"
	if *recompute {
		method = "recompute"
	}
	fmt.Printf("graph: %d vertices, %d edges; method: %s; removals: %d; time: %s\n",
		g.N(), g.M(), method, len(res.Steps), elapsed.Round(time.Millisecond))
	fmt.Printf("best modularity: %.4f (after %d removals)\n", res.BestModularity, res.BestStep+1)

	groups := res.Communities()
	fmt.Printf("communities found: %d\n", len(groups))
	for i, members := range groups {
		if i >= *show {
			fmt.Printf("  ... and %d more\n", len(groups)-*show)
			break
		}
		preview := members
		if len(preview) > 12 {
			preview = preview[:12]
		}
		fmt.Printf("  community %d: %d vertices %v\n", i, len(members), preview)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gncommunity:", err)
	os.Exit(1)
}
