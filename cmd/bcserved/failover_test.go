package main

import (
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestFailoverSIGKILL is the end-to-end replication test (and the CI
// failover step): it builds the real bcserved binary, runs a leader with a
// write-ahead log and a follower replicating from it, streams updates into
// the leader while continuously reading from the follower, SIGKILLs the
// leader, and asserts that
//
//   - the follower served every read throughout (before, during and after
//     the leader's death),
//   - the follower's scores are byte-for-byte identical to a clean,
//     uninterrupted single-process replay of the acknowledged stream,
//   - promoting the follower turns it into a writable primary.
//
// Exact and sampled modes are both covered (the follower inherits the
// leader's source sample through the bootstrap snapshot).
func TestFailoverSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the bcserved binary")
	}
	bin := filepath.Join(t.TempDir(), "bcserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building bcserved: %v", err)
	}
	for _, tc := range []struct {
		name  string
		extra []string
	}{
		{"exact", nil},
		{"sampled", []string{"-sample", "7", "-sample-seed", "3"}},
	} {
		t.Run(tc.name, func(t *testing.T) { runFailover(t, bin, tc.extra) })
	}
}

func runFailover(t *testing.T, bin string, extra []string) {
	graphFile := writeTestGraph(t, 30, 60, 19)
	batches := makeBatches(30, 10, 6, 31)

	leader := startDaemon(t, bin, append([]string{
		"-graph", graphFile, "-wal-dir", t.TempDir(), "-snapshot-dir", t.TempDir(),
		"-snapshot-interval", "0", "-fsync", "batch", "-max-batch", "8",
	}, extra...)...)
	// The follower gets its own snapshot dir (it snapshots independently)
	// and a WAL dir that stays empty until a promotion claims it. No
	// -sample flags: the sample rides in the bootstrap snapshot.
	folSnapDir, folWALDir := t.TempDir(), t.TempDir()
	follower := startDaemon(t, bin,
		"-follow", leader.base, "-snapshot-dir", folSnapDir, "-wal-dir", folWALDir,
		"-snapshot-interval", "0", "-max-batch", "8")

	// Continuous read pressure on the follower for the whole test: every
	// probe must answer 200, leader alive or dead.
	var readFailures atomic.Int64
	var reads atomic.Int64
	stopReads := make(chan struct{})
	readsDone := make(chan struct{})
	go func() {
		defer close(readsDone)
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			resp, err := http.Get(follower.base + "/v1/graph")
			if err != nil || resp.StatusCode != http.StatusOK {
				readFailures.Add(1)
			}
			if err == nil {
				resp.Body.Close()
			}
			reads.Add(1)
			time.Sleep(5 * time.Millisecond)
		}
	}()
	var readsStopped bool
	stopReadPressure := func() {
		if readsStopped {
			return
		}
		readsStopped = true
		close(stopReads)
		<-readsDone
		if n := readFailures.Load(); n > 0 {
			t.Errorf("%d of %d follower reads failed during the failover", n, reads.Load())
		}
	}
	defer stopReadPressure()

	// Ingest under load (every batch acknowledged), then wait for the
	// follower to reach the leader's log end.
	for _, b := range batches {
		leader.ingest(t, b, true)
	}
	leaderSeq := uint64(leader.stats(t)["wal_sequence"].(float64))
	waitFollowerAt(t, follower, leaderSeq)

	// Readiness: a caught-up follower must be ready.
	if status := probe(t, follower.base+"/readyz"); status != http.StatusOK {
		t.Fatalf("caught-up follower /readyz: %d, want 200", status)
	}

	// The leader dies hard. The follower must keep serving.
	if err := leader.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	leader.cmd.Wait() //nolint:errcheck // killed on purpose
	if status := probe(t, follower.base+"/v1/graph"); status != http.StatusOK {
		t.Fatalf("follower read after leader SIGKILL: %d, want 200", status)
	}
	// With the leader gone the follower must flip unready (disconnected)
	// within a few failed polls.
	deadline := time.Now().Add(30 * time.Second)
	for probe(t, follower.base+"/readyz") == http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("follower still ready long after the leader died")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Clean single-process replay of the acknowledged stream: the follower's
	// scores must match it byte for byte.
	clean := startDaemon(t, bin, append([]string{
		"-graph", graphFile, "-max-batch", "8",
	}, extra...)...)
	for _, b := range batches {
		clean.ingest(t, b, true)
	}
	folStats, cleanStats := follower.stats(t), clean.stats(t)
	for _, key := range []string{"updates_applied", "sampled", "sampled_sources", "sample_scale"} {
		if fmt.Sprint(folStats[key]) != fmt.Sprint(cleanStats[key]) {
			t.Errorf("stats[%q]: follower %v, clean %v", key, folStats[key], cleanStats[key])
		}
	}
	var folG, cleanG map[string]any
	follower.get(t, "/v1/graph", &folG)
	clean.get(t, "/v1/graph", &cleanG)
	if fmt.Sprint(folG["n"], folG["m"]) != fmt.Sprint(cleanG["n"], cleanG["m"]) {
		t.Fatalf("follower graph %v, clean graph %v", folG, cleanG)
	}
	n := int(folG["n"].(float64))
	for v := 0; v < n; v++ {
		var fv, cv struct {
			Score float64 `json:"score"`
		}
		follower.get(t, fmt.Sprintf("/v1/vertices/%d", v), &fv)
		clean.get(t, fmt.Sprintf("/v1/vertices/%d", v), &cv)
		if fv.Score != cv.Score {
			t.Fatalf("VBC[%d]: follower %v, clean %v (must be bit-identical)", v, fv.Score, cv.Score)
		}
	}

	// Failover completes with a promotion: the follower becomes a writable
	// primary (with a fresh WAL at its applied sequence) and accepts the
	// write the dead leader no longer can.
	follower.post(t, "/v1/replication/promote", map[string]any{})
	appliedBefore := int(follower.stats(t)["updates_applied"].(float64))
	follower.ingest(t, []map[string]any{{"op": "add", "u": 0, "v": 500}}, true)
	if got := int(follower.stats(t)["updates_applied"].(float64)); got != appliedBefore+1 {
		t.Fatalf("promoted follower applied %d updates, want %d", got, appliedBefore+1)
	}
	if status := probe(t, follower.base+"/readyz"); status != http.StatusOK {
		t.Fatalf("promoted follower /readyz: %d, want 200", status)
	}

	// The promoted primary must itself be crash-durable from the moment of
	// promotion: kill -9 (no graceful shutdown, no final snapshot) and
	// restart from its snapshot dir + the fresh WAL — the promotion wrote a
	// snapshot covering the new log's base, and the post-promotion write
	// was fsynced, so nothing may be lost. The read-availability contract
	// covers the leader's death, not the follower's own kill: settle it
	// before the probes start failing for the right reason.
	stopReadPressure()
	if err := follower.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	follower.cmd.Wait() //nolint:errcheck // killed on purpose
	restarted := startDaemon(t, bin,
		"-snapshot-dir", folSnapDir, "-wal-dir", folWALDir,
		"-snapshot-interval", "0", "-max-batch", "8")
	if got := int(restarted.stats(t)["updates_applied"].(float64)); got != appliedBefore+1 {
		t.Fatalf("restarted promoted primary applied %d updates, want %d", got, appliedBefore+1)
	}
	var rv struct {
		Known bool `json:"known"`
	}
	// Vertex 500 only exists through the post-promotion write.
	restarted.get(t, "/v1/vertices/500", &rv)
	if !rv.Known {
		t.Fatal("restarted promoted primary lost the post-promotion write")
	}
}

// waitFollowerAt polls the follower's stats until its applied replication
// sequence reaches seq.
func waitFollowerAt(t *testing.T, d *daemon, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := d.stats(t)
		if applied, ok := st["replication_applied_sequence"].(float64); ok && uint64(applied) >= seq {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached sequence %d: %v", seq, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// probe returns the status code of one GET (0 on transport error).
func probe(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}
