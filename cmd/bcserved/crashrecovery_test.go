package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecoverySIGKILL is the end-to-end durability test (and the CI
// crash-recovery step): it builds the real bcserved binary, streams updates
// into it over HTTP with a write-ahead log enabled, SIGKILLs the process
// mid-ingest (no graceful shutdown, no final snapshot), restarts it from the
// same directories and asserts that every acknowledged update survived: the
// reported scores are byte-for-byte identical to a clean, uninterrupted
// replay of the same stream — in exact and in sampled mode.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the bcserved binary")
	}
	bin := filepath.Join(t.TempDir(), "bcserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building bcserved: %v", err)
	}
	for _, tc := range []struct {
		name  string
		extra []string
	}{
		{"exact", nil},
		{"sampled", []string{"-sample", "7", "-sample-seed", "3"}},
	} {
		t.Run(tc.name, func(t *testing.T) { runCrashRecovery(t, bin, tc.extra) })
	}
}

func runCrashRecovery(t *testing.T, bin string, extra []string) {
	graphFile := writeTestGraph(t, 30, 60, 17)
	batches := makeBatches(30, 12, 6, 23)
	walDir := t.TempDir()
	snapDir := t.TempDir()

	// Phase 1: serve with a WAL, snapshot mid-stream, SIGKILL mid-ingest.
	crash := startDaemon(t, bin, append([]string{
		"-graph", graphFile, "-wal-dir", walDir, "-snapshot-dir", snapDir,
		"-snapshot-interval", "0", "-fsync", "batch", "-max-batch", "8",
	}, extra...)...)
	for i, b := range batches {
		if i == len(batches)/2 {
			crash.post(t, "/v1/snapshot", map[string]any{})
		}
		crash.ingest(t, b, true)
	}
	// One more batch in flight without waiting for the ack, then the kill:
	// being unacknowledged it may or may not survive, but — records being
	// atomic — only as a whole. Brand-new vertices make it impossible to
	// reject, so updates_applied tells us whether it was made durable.
	inflight := []map[string]any{{"op": "add", "u": 500, "v": 501}}
	crash.ingest(t, inflight, false)
	if err := crash.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	crash.cmd.Wait() //nolint:errcheck // killed on purpose

	// Phase 2: restart from the same snapshot + WAL directories.
	recovered := startDaemon(t, bin, append([]string{
		"-graph", graphFile, "-wal-dir", walDir, "-snapshot-dir", snapDir,
		"-snapshot-interval", "0", "-fsync", "batch", "-max-batch", "8",
	}, extra...)...)
	recStats := recovered.stats(t)

	// Phase 3: a clean, uninterrupted replay of the acknowledged stream (plus
	// the in-flight batch iff recovery shows it was made durable).
	clean := startDaemon(t, bin, append([]string{
		"-graph", graphFile, "-max-batch", "8",
	}, extra...)...)
	for _, b := range batches {
		clean.ingest(t, b, true)
	}
	ackedApplied := int(clean.stats(t)["updates_applied"].(float64))
	switch int(recStats["updates_applied"].(float64)) {
	case ackedApplied:
		// The in-flight batch was lost whole: allowed, it was never acked.
	case ackedApplied + len(inflight):
		// The in-flight batch was logged before the kill: the clean replay
		// must include it too.
		clean.ingest(t, inflight, true)
	default:
		t.Fatalf("recovered updates_applied = %v, want %d or %d",
			recStats["updates_applied"], ackedApplied, ackedApplied+len(inflight))
	}

	cleanStats := clean.stats(t)
	for _, key := range []string{"updates_applied", "sampled", "sampled_sources", "sample_scale"} {
		if fmt.Sprint(recStats[key]) != fmt.Sprint(cleanStats[key]) {
			t.Errorf("stats[%q]: recovered %v, clean %v", key, recStats[key], cleanStats[key])
		}
	}
	var recG, cleanG map[string]any
	recovered.get(t, "/v1/graph", &recG)
	clean.get(t, "/v1/graph", &cleanG)
	if fmt.Sprint(recG["n"], recG["m"]) != fmt.Sprint(cleanG["n"], cleanG["m"]) {
		t.Fatalf("recovered graph %v, clean graph %v", recG, cleanG)
	}
	// Vertex scores must be byte-for-byte identical (Go's float64 JSON
	// encoding round-trips exactly, so equal strings mean equal bits).
	n := int(recG["n"].(float64))
	for v := 0; v < n; v++ {
		var rv, cv struct {
			Score float64 `json:"score"`
		}
		recovered.get(t, fmt.Sprintf("/v1/vertices/%d", v), &rv)
		clean.get(t, fmt.Sprintf("/v1/vertices/%d", v), &cv)
		if rv.Score != cv.Score {
			t.Fatalf("VBC[%d]: recovered %v, clean %v (must be bit-identical)", v, rv.Score, cv.Score)
		}
	}
}

// daemon is one running bcserved process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	addr := freeAddr(t)
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, base: "http://" + addr}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("bcserved on %s did not become healthy", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (d *daemon) ingest(t *testing.T, updates []map[string]any, wait bool) {
	t.Helper()
	d.post(t, "/v1/updates", map[string]any{"updates": updates, "wait": wait})
}

func (d *daemon) post(t *testing.T, path string, body map[string]any) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: %d", path, resp.StatusCode)
	}
}

func (d *daemon) get(t *testing.T, path string, out any) {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func (d *daemon) stats(t *testing.T) map[string]any {
	t.Helper()
	var out map[string]any
	d.get(t, "/v1/stats", &out)
	return out
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

// writeTestGraph writes a deterministic random edge list with n vertices and
// m edges (a path through all vertices keeps it connected).
func writeTestGraph(t *testing.T, n, m int, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	type edge struct{ u, v int }
	seen := map[edge]bool{}
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if u == v || seen[edge{u, v}] {
			return
		}
		seen[edge{u, v}] = true
		fmt.Fprintf(&sb, "%d %d\n", u, v)
	}
	for i := 0; i+1 < n; i++ {
		add(i, i+1)
	}
	for len(seen) < m {
		add(rng.Intn(n), rng.Intn(n))
	}
	path := filepath.Join(t.TempDir(), "graph.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// makeBatches builds a deterministic stream of update batches: additions
// (some referencing brand-new vertices), removals of previously added
// edges, and an add+remove pair that the server's coalescer cancels.
func makeBatches(n, batches, perBatch int, seed int64) [][]map[string]any {
	rng := rand.New(rand.NewSource(seed))
	next := n
	var live [][2]int
	out := make([][]map[string]any, 0, batches)
	for b := 0; b < batches; b++ {
		var batch []map[string]any
		for len(batch) < perBatch {
			switch r := rng.Intn(8); {
			case r == 0 && len(live) > 0:
				i := rng.Intn(len(live))
				e := live[i]
				live = append(live[:i], live[i+1:]...)
				batch = append(batch, map[string]any{"op": "remove", "u": e[0], "v": e[1]})
			case r == 1:
				u := rng.Intn(n)
				batch = append(batch,
					map[string]any{"op": "add", "u": u, "v": next},
					map[string]any{"op": "remove", "u": u, "v": next})
				next++
			default:
				u, v := rng.Intn(next), rng.Intn(next)
				if u == v {
					continue
				}
				live = append(live, [2]int{u, v})
				batch = append(batch, map[string]any{"op": "add", "u": u, "v": v})
			}
		}
		out = append(out, batch)
	}
	return out
}
