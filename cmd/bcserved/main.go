// Command bcserved is the online serving daemon of the streaming betweenness
// framework: it loads (or restores) a graph, runs the offline initialisation
// and then serves an HTTP/JSON API for continuous edge updates and
// low-latency betweenness queries, with periodic and on-shutdown snapshots
// for restart durability.
//
// Examples:
//
//	bcserved -addr :8080 -graph graph.txt -workers 4
//	bcserved -addr :8080 -snapshot-dir /var/lib/bcserved -snapshot-interval 1m
//	bcserved -addr :8080 -snapshot-dir /var/lib/bcserved -wal-dir /var/lib/bcserved/wal
//
// When -snapshot-dir contains a snapshot from a previous run it is restored
// (and -graph is ignored); otherwise the daemon starts from -graph, or from
// an empty graph that grows as updates referencing new vertices arrive.
// With -wal-dir, every accepted batch is also appended to a write-ahead log
// before it is applied (fsync policy set by -fsync), and on startup the log
// tail not covered by the restored snapshot is replayed — so even a kill -9
// loses no acknowledged update. Without a snapshot directory, a restart
// must be given the same -graph/-sample flags so the replay starts from the
// same base state.
//
// See README.md for the endpoint reference and an example curl session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streambc/internal/bc"
	"streambc/internal/engine"
	"streambc/internal/graph"
	"streambc/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port)")
		graphPath    = flag.String("graph", "", "edge-list file of the initial graph (ignored when a snapshot is restored)")
		directed     = flag.Bool("directed", false, "treat the graph as directed")
		workers      = flag.Int("workers", 1, "number of parallel workers")
		diskDir      = flag.String("disk", "", "keep the betweenness data out of core in this directory")
		snapshotDir  = flag.String("snapshot-dir", "", "directory for snapshots (enables restore-on-start and snapshot-on-shutdown)")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "period of automatic snapshots (0 disables; needs -snapshot-dir)")
		walDir       = flag.String("wal-dir", "", "directory for the write-ahead log (makes accepted updates durable and replays the uncovered tail on start)")
		fsyncPolicy  = flag.String("fsync", "batch", "WAL fsync policy: \"batch\" (per accepted batch), \"off\", or an interval like \"200ms\"")
		walSegBytes  = flag.Int64("wal-segment-bytes", 64<<20, "WAL segment rotation threshold in bytes")
		maxQueue     = flag.Int("max-queue", 65536, "ingest queue capacity before updates are rejected with 503")
		maxBatch     = flag.Int("max-batch", 256, "largest update batch shipped to the engine in one call")
		sample       = flag.Int("sample", 0, "approximate mode: maintain only k uniformly sampled sources, scaling scores by n/k (0 = exact; ignored when a sampled snapshot is restored)")
		sampleSeed   = flag.Int64("sample-seed", 1, "random seed of the source sample")
	)
	flag.Parse()

	if *workers < 1 {
		usageError("-workers must be at least 1")
	}
	if *maxBatch < 1 {
		usageError("-max-batch must be at least 1")
	}
	if *maxQueue < 1 {
		usageError("-max-queue must be at least 1")
	}
	if *sample < 0 {
		usageError("-sample must be 0 (exact) or a positive sample size")
	}
	fsyncMode, fsyncInterval, err := server.ParseFsyncPolicy(*fsyncPolicy)
	if err != nil {
		usageError(err.Error())
	}
	if *walDir == "" && *fsyncPolicy != "batch" {
		usageError("-fsync needs -wal-dir")
	}
	if *walSegBytes < 4096 {
		usageError("-wal-segment-bytes must be at least 4096")
	}

	cfg := engine.Config{Workers: *workers}
	if *diskDir != "" {
		if err := os.MkdirAll(*diskDir, 0o755); err != nil {
			log.Fatalf("bcserved: creating disk store directory: %v", err)
		}
		cfg.Store = engine.DiskFactory(*diskDir)
	}

	eng, err := buildEngine(*snapshotDir, *graphPath, *directed, cfg, *sample, *sampleSeed)
	if err != nil {
		log.Fatalf("bcserved: %v", err)
	}
	defer eng.Close()
	if eng.Sampled() {
		log.Printf("bcserved: approximate mode, %d of %d sources sampled (scale %.3f)",
			eng.SampleSize(), eng.Graph().N(), eng.Scale())
	}

	var wal *server.WAL
	if *walDir != "" {
		wal, err = server.OpenWAL(server.WALConfig{
			Dir:          *walDir,
			SegmentBytes: *walSegBytes,
			Mode:         fsyncMode,
			Interval:     fsyncInterval,
		}, eng.WALOffset())
		if err != nil {
			log.Fatalf("bcserved: opening write-ahead log: %v", err)
		}
		replayed, err := server.ReplayWAL(wal, eng, *maxBatch)
		if err != nil {
			log.Fatalf("bcserved: replaying write-ahead log: %v", err)
		}
		if replayed > 0 {
			log.Printf("bcserved: replayed %d updates from the write-ahead log (now at sequence %d)",
				replayed, wal.Seq())
		}
	}

	srv := server.New(eng, server.Config{
		SnapshotDir:      *snapshotDir,
		SnapshotInterval: *snapInterval,
		MaxQueue:         *maxQueue,
		MaxBatch:         *maxBatch,
		WAL:              wal,
	})
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("bcserved: serving on http://%s (n=%d m=%d workers=%d)",
			*addr, eng.Graph().N(), eng.Graph().M(), eng.Workers())
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("bcserved: received %v, shutting down", sig)
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("bcserved: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("bcserved: HTTP shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("bcserved: %v", err)
	} else if *snapshotDir != "" {
		log.Printf("bcserved: final snapshot written to %s", *snapshotDir)
	}
}

// buildEngine restores the engine from the latest snapshot when one exists,
// and falls back to the -graph file (or an empty graph) otherwise. A sample
// size > 0 selects the approximate mode: the sample is drawn from the initial
// graph, unless a restored snapshot already carries one (which wins — its
// scores are only coherent with the sample they were accumulated over).
func buildEngine(snapshotDir, graphPath string, directed bool, cfg engine.Config, sample int, sampleSeed int64) (*engine.Engine, error) {
	if snapshotDir != "" {
		st, err := server.LoadSnapshotFile(snapshotDir)
		switch {
		case err == nil:
			log.Printf("bcserved: restoring snapshot (n=%d m=%d, %d updates applied)",
				st.Graph.N(), st.Graph.M(), st.Applied)
			if st.Sources == nil && sample > 0 {
				if err := configureSampling(&cfg, st.Graph.N(), sample, sampleSeed); err != nil {
					return nil, err
				}
			}
			return engine.RestoreEngine(st, cfg)
		case errors.Is(err, os.ErrNotExist):
			// First start: fall through to -graph.
		default:
			return nil, fmt.Errorf("restoring snapshot: %w", err)
		}
	}
	var g *graph.Graph
	if graphPath != "" {
		var err error
		if g, err = graph.LoadEdgeListFile(graphPath, directed); err != nil {
			return nil, err
		}
	} else if directed {
		g = graph.NewDirected(0)
	} else {
		g = graph.New(0)
	}
	if sample > 0 {
		if err := configureSampling(&cfg, g.N(), sample, sampleSeed); err != nil {
			return nil, err
		}
	}
	return engine.New(g, cfg)
}

// configureSampling draws the source sample for an n-vertex graph into cfg.
func configureSampling(cfg *engine.Config, n, sample int, sampleSeed int64) error {
	if n == 0 {
		return fmt.Errorf("-sample needs an initial graph (or a snapshot) to sample sources from")
	}
	if sample > n {
		sample = n
	}
	cfg.Sources = bc.SampleSources(n, sample, sampleSeed)
	cfg.Scale = float64(n) / float64(sample)
	return nil
}

// usageError reports a flag-validation failure with the usage text and exits
// with the conventional status 2.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "bcserved:", msg)
	flag.Usage()
	os.Exit(2)
}
