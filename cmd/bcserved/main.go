// Command bcserved is the online serving daemon of the streaming betweenness
// framework: it loads (or restores) a graph, runs the offline initialisation
// and then serves an HTTP/JSON API for continuous edge updates and
// low-latency betweenness queries, with periodic and on-shutdown snapshots
// for restart durability.
//
// Examples:
//
//	bcserved -addr :8080 -graph graph.txt -workers 4
//	bcserved -addr :8080 -snapshot-dir /var/lib/bcserved -snapshot-interval 1m
//	bcserved -addr :8080 -snapshot-dir /var/lib/bcserved -wal-dir /var/lib/bcserved/wal
//	bcserved -addr :8081 -follow http://leader:8080 -snapshot-dir /var/lib/bcserved-replica
//
// When -snapshot-dir contains a snapshot from a previous run it is restored
// (and -graph is ignored); otherwise the daemon starts from -graph, or from
// an empty graph that grows as updates referencing new vertices arrive.
// With -wal-dir, every accepted batch is also appended to a write-ahead log
// before it is applied (fsync policy set by -fsync), and on startup the log
// tail not covered by the restored snapshot is replayed — so even a kill -9
// loses no acknowledged update. Without a snapshot directory, a restart
// must be given the same -graph/-sample flags so the replay starts from the
// same base state.
//
// With -follow the daemon runs as a read-only replica of the given leader
// (any bcserved with a -wal-dir): it bootstraps from the leader's snapshot
// (or its own local one), tails and applies the leader's write-ahead log,
// serves every read endpoint locally — with scores bit-identical to the
// leader's at the same log sequence — and answers writes with 307 to the
// leader. POST /v1/replication/promote turns it into a writable primary
// (durably, when a -wal-dir was given).
//
// See README.md for the endpoint reference and an example curl session.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"streambc/internal/bc"
	"streambc/internal/engine"
	"streambc/internal/graph"
	"streambc/internal/replication"
	"streambc/internal/server"
	"streambc/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port)")
		graphPath    = flag.String("graph", "", "edge-list file of the initial graph (ignored when a snapshot is restored)")
		directed     = flag.Bool("directed", false, "treat the graph as directed")
		workers      = flag.Int("workers", 1, "number of parallel workers")
		diskDir      = flag.String("disk", "", "keep the betweenness data out of core in this directory")
		snapshotDir  = flag.String("snapshot-dir", "", "directory for snapshots (enables restore-on-start and snapshot-on-shutdown)")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "period of automatic snapshots (0 disables; needs -snapshot-dir)")
		walDir       = flag.String("wal-dir", "", "directory for the write-ahead log (makes accepted updates durable and replays the uncovered tail on start; on a -follow replica, used only after a promotion)")
		fsyncPolicy  = flag.String("fsync", "batch", "WAL fsync policy: \"batch\" (per accepted batch), \"off\", or an interval like \"200ms\"")
		walSegBytes  = flag.Int64("wal-segment-bytes", 64<<20, "WAL segment rotation threshold in bytes")
		maxQueue     = flag.Int("max-queue", 65536, "ingest queue capacity before updates are rejected with 503")
		maxBatch     = flag.Int("max-batch", 256, "largest update batch shipped to the engine in one call")
		sample       = flag.Int("sample", 0, "approximate mode: maintain only k uniformly sampled sources, scaling scores by n/k (0 = exact; ignored when a sampled snapshot is restored)")
		sampleSeed   = flag.Int64("sample-seed", 1, "random seed of the source sample")
		follow       = flag.String("follow", "", "run as a read-only replica of the leader at this base URL (e.g. http://leader:8080)")
		readyMaxLag  = flag.Uint64("ready-max-lag", 1024, "replica readiness: /readyz reports ready only within this many WAL records of the leader")
		showVersion  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println("bcserved", version.Version)
		return
	}
	if *workers < 1 {
		usageError("-workers must be at least 1")
	}
	if *maxBatch < 1 {
		usageError("-max-batch must be at least 1")
	}
	if *maxQueue < 1 {
		usageError("-max-queue must be at least 1")
	}
	if *sample < 0 {
		usageError("-sample must be 0 (exact) or a positive sample size")
	}
	fsyncMode, fsyncInterval, err := server.ParseFsyncPolicy(*fsyncPolicy)
	if err != nil {
		usageError(err.Error())
	}
	if *walDir == "" && *fsyncPolicy != "batch" {
		usageError("-fsync needs -wal-dir")
	}
	if *walSegBytes < 4096 {
		usageError("-wal-segment-bytes must be at least 4096")
	}
	if *follow != "" {
		if *graphPath != "" {
			usageError("-graph cannot be combined with -follow (a replica bootstraps from the leader's snapshot)")
		}
		if *sample > 0 {
			usageError("-sample cannot be combined with -follow (the source sample comes from the leader's snapshot)")
		}
	}

	cfg := engine.Config{Workers: *workers}
	if *diskDir != "" {
		if err := os.MkdirAll(*diskDir, 0o755); err != nil {
			log.Fatalf("bcserved: creating disk store directory: %v", err)
		}
		cfg.Store = engine.DiskFactory(*diskDir)
	}
	walCfg := server.WALConfig{
		Dir:          *walDir,
		SegmentBytes: *walSegBytes,
		Mode:         fsyncMode,
		Interval:     fsyncInterval,
	}
	srvCfg := server.Config{
		SnapshotDir:      *snapshotDir,
		SnapshotInterval: *snapInterval,
		MaxQueue:         *maxQueue,
		MaxBatch:         *maxBatch,
		ReadyMaxLag:      *readyMaxLag,
	}

	if *follow != "" {
		runFollower(*addr, *follow, cfg, srvCfg, walCfg)
		return
	}

	eng, err := buildEngine(*snapshotDir, *graphPath, *directed, cfg, *sample, *sampleSeed)
	if err != nil {
		log.Fatalf("bcserved: %v", err)
	}
	defer eng.Close()
	if eng.Sampled() {
		log.Printf("bcserved: approximate mode, %d of %d sources sampled (scale %.3f)",
			eng.SampleSize(), eng.Graph().N(), eng.Scale())
	}

	var wal *server.WAL
	if *walDir != "" {
		wal, err = server.OpenWAL(walCfg, eng.WALOffset())
		if err != nil {
			log.Fatalf("bcserved: opening write-ahead log: %v", err)
		}
		replayed, err := server.ReplayWAL(wal, eng, *maxBatch)
		if err != nil {
			log.Fatalf("bcserved: replaying write-ahead log: %v", err)
		}
		if replayed > 0 {
			log.Printf("bcserved: replayed %d updates from the write-ahead log (now at sequence %d)",
				replayed, wal.Seq())
		}
	}

	srvCfg.WAL = wal
	srv := server.New(eng, srvCfg)
	srv.Start()
	serve(newHTTPServer(*addr, srv.Handler()), func() {
		log.Printf("bcserved: %s serving on http://%s (n=%d m=%d workers=%d)",
			version.Version, *addr, eng.Graph().N(), eng.Graph().M(), eng.Workers())
	}, func() {
		if err := srv.Close(); err != nil {
			log.Printf("bcserved: %v", err)
		} else if *snapshotDir != "" {
			log.Printf("bcserved: final snapshot written to %s", *snapshotDir)
		}
	})
}

// runFollower is the -follow mode: bootstrap a replica from the leader (or a
// local snapshot), serve reads while tailing the leader's write-ahead log,
// and expose POST /v1/replication/promote for failover.
func runFollower(addr, leaderURL string, cfg engine.Config, srvCfg server.Config, walCfg server.WALConfig) {
	client := replication.NewClient(leaderURL)
	eng, err := replication.Bootstrap(context.Background(), client, srvCfg.SnapshotDir, cfg)
	if err != nil {
		log.Fatalf("bcserved: bootstrapping replica from %s: %v", leaderURL, err)
	}
	defer eng.Close()
	log.Printf("bcserved: replica bootstrapped at leader sequence %d (n=%d m=%d)",
		eng.WALOffset(), eng.Graph().N(), eng.Graph().M())

	srvCfg.Replica = true
	srvCfg.LeaderURL = leaderURL
	srv := server.New(eng, srvCfg)
	tailCtx, cancelTail := context.WithCancel(context.Background())
	defer cancelTail()
	tailer := replication.NewTailer(client, srv, replication.TailerConfig{
		Rebootstrap: func(st *engine.SnapshotState) error {
			return srv.SwapEngine(func() (*engine.Engine, error) {
				return engine.RestoreEngine(st, cfg)
			})
		},
		Logf: log.Printf,
	})
	srv.SetReplicationStats(tailer.Stats)
	srv.Start()
	tailStopped := make(chan struct{})
	go func() {
		defer close(tailStopped)
		if err := tailer.Run(tailCtx); err != nil {
			// Terminal replication failure — divergence, a failed
			// re-bootstrap, or an engine failure mid-apply: the replica can
			// never advance again, and in the failure cases its state may no
			// longer be trusted. Exit loudly so the orchestrator restarts
			// (and re-bootstraps) it, rather than serving ever-staler or
			// untrusted data behind a green liveness probe. A leader that is
			// merely down is NOT terminal: the tailer retries that forever.
			log.Fatalf("bcserved: replication failed: %v", err)
		}
	}()
	stopTailing := func() bool {
		cancelTail()
		select {
		case <-tailStopped:
			return true
		case <-time.After(30 * time.Second):
			return false
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	pm := &promoter{srv: srv, stopTailing: stopTailing, walCfg: walCfg}
	mux.HandleFunc("POST /v1/replication/promote", pm.handle)
	serve(newHTTPServer(addr, mux), func() {
		log.Printf("bcserved: %s replica of %s serving on http://%s (n=%d m=%d)",
			version.Version, leaderURL, addr, eng.Graph().N(), eng.Graph().M())
	}, func() {
		// Stop replicating before the final snapshot so the snapshot
		// captures the last applied sequence, then close the serving layer.
		stopTailing()
		if err := srv.Close(); err != nil {
			log.Printf("bcserved: %v", err)
		}
	})
}

// promoter serialises the one-way replica-to-primary transition.
type promoter struct {
	mu          sync.Mutex
	promoted    bool
	srv         *server.Server
	stopTailing func() bool // cancel the tailer, wait for it; false on timeout
	walCfg      server.WALConfig
}

// handle is POST /v1/replication/promote: stop tailing, optionally open a
// fresh write-ahead log at the applied sequence, and start accepting writes.
func (p *promoter) handle(w http.ResponseWriter, _ *http.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	httpErr := func(status int, err error) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]any{"error": err.Error()}) //nolint:errcheck
	}
	if p.promoted {
		httpErr(http.StatusConflict, errors.New("already promoted"))
		return
	}
	if !p.stopTailing() {
		httpErr(http.StatusInternalServerError, errors.New("replication tailer did not stop"))
		return
	}
	seq := p.srv.AppliedWALSeq()
	if p.walCfg.Dir != "" {
		cfg := p.walCfg
		// The replica's state at seq came over replication, not from a local
		// log: a brand-new log legitimately begins there.
		cfg.AllowFresh = true
		wal, err := server.OpenWAL(cfg, seq)
		if err != nil {
			httpErr(http.StatusInternalServerError, fmt.Errorf("opening write-ahead log: %w", err))
			return
		}
		if got := wal.Seq(); got != seq {
			// The directory held a pre-existing log extending past the
			// applied sequence — some earlier incarnation's history, not
			// this replica's. Appending after it would interleave foreign
			// records into recovery. Refuse: the operator must point the
			// promotion at an empty WAL directory.
			wal.Close() //nolint:errcheck
			httpErr(http.StatusConflict, fmt.Errorf(
				"WAL directory %s already holds records through sequence %d but the replica is at %d; promote needs an empty WAL directory",
				cfg.Dir, got, seq))
			return
		}
		if err := p.srv.AttachWAL(wal); err != nil {
			wal.Close() //nolint:errcheck
			httpErr(http.StatusInternalServerError, err)
			return
		}
	}
	if err := p.srv.Promote(); err != nil {
		httpErr(http.StatusInternalServerError, err)
		return
	}
	p.promoted = true
	// Make the promotion point durable immediately: the fresh WAL begins at
	// seq, so a snapshot covering seq must exist before the next crash — an
	// older snapshot would ask recovery to replay records this log never
	// held. A failed snapshot does not undo the promotion (the WAL is
	// already making writes durable); it is reported so the operator
	// retries via POST /v1/snapshot.
	snapErr := ""
	if _, err := p.srv.Snapshot(); err != nil && !errors.Is(err, server.ErrNoSnapshotDir) {
		snapErr = err.Error()
		log.Printf("bcserved: promotion snapshot failed (retry with POST /v1/snapshot): %v", err)
	}
	log.Printf("bcserved: promoted to primary at sequence %d (durable=%v)", seq, p.walCfg.Dir != "")
	resp := map[string]any{
		"promoted":     true,
		"wal_sequence": seq,
		"durable":      p.walCfg.Dir != "",
	}
	if snapErr != "" {
		resp["snapshot_error"] = snapErr
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// newHTTPServer wraps a handler in an http.Server with slowloris-resistant
// timeouts. WriteTimeout is generous rather than absent because the
// streaming replication routes clear their own write deadline
// (http.ResponseController), so only stuck plain-JSON responses are cut.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// serve runs httpSrv until SIGINT/SIGTERM, then shuts down the HTTP
// listener and calls closeDown (which owns stopping the serving layer).
func serve(httpSrv *http.Server, onUp, closeDown func()) {
	errc := make(chan error, 1)
	go func() {
		onUp()
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("bcserved: received %v, shutting down", sig)
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("bcserved: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("bcserved: HTTP shutdown: %v", err)
	}
	closeDown()
}

// buildEngine restores the engine from the latest snapshot when one exists,
// and falls back to the -graph file (or an empty graph) otherwise. A sample
// size > 0 selects the approximate mode: the sample is drawn from the initial
// graph, unless a restored snapshot already carries one (which wins — its
// scores are only coherent with the sample they were accumulated over).
func buildEngine(snapshotDir, graphPath string, directed bool, cfg engine.Config, sample int, sampleSeed int64) (*engine.Engine, error) {
	if snapshotDir != "" {
		st, err := server.LoadSnapshotFile(snapshotDir)
		switch {
		case err == nil:
			log.Printf("bcserved: restoring snapshot (n=%d m=%d, %d updates applied)",
				st.Graph.N(), st.Graph.M(), st.Applied)
			if st.Sources == nil && sample > 0 {
				if err := configureSampling(&cfg, st.Graph.N(), sample, sampleSeed); err != nil {
					return nil, err
				}
			}
			return engine.RestoreEngine(st, cfg)
		case errors.Is(err, os.ErrNotExist):
			// First start: fall through to -graph.
		default:
			return nil, fmt.Errorf("restoring snapshot: %w", err)
		}
	}
	var g *graph.Graph
	if graphPath != "" {
		var err error
		if g, err = graph.LoadEdgeListFile(graphPath, directed); err != nil {
			return nil, err
		}
	} else if directed {
		g = graph.NewDirected(0)
	} else {
		g = graph.New(0)
	}
	if sample > 0 {
		if err := configureSampling(&cfg, g.N(), sample, sampleSeed); err != nil {
			return nil, err
		}
	}
	return engine.New(g, cfg)
}

// configureSampling draws the source sample for an n-vertex graph into cfg.
func configureSampling(cfg *engine.Config, n, sample int, sampleSeed int64) error {
	if n == 0 {
		return fmt.Errorf("-sample needs an initial graph (or a snapshot) to sample sources from")
	}
	if sample > n {
		sample = n
	}
	cfg.Sources = bc.SampleSources(n, sample, sampleSeed)
	cfg.Scale = float64(n) / float64(sample)
	return nil
}

// usageError reports a flag-validation failure with the usage text and exits
// with the conventional status 2.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "bcserved:", msg)
	flag.Usage()
	os.Exit(2)
}
