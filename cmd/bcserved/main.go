// Command bcserved is the online serving daemon of the streaming betweenness
// framework: it loads (or restores) a graph, runs the offline initialisation
// and then serves an HTTP/JSON API for continuous edge updates and
// low-latency betweenness queries, with periodic and on-shutdown snapshots
// for restart durability.
//
// Examples:
//
//	bcserved -addr :8080 -graph graph.txt -workers 4
//	bcserved -addr :8080 -snapshot-dir /var/lib/bcserved -snapshot-interval 1m
//	bcserved -addr :8080 -snapshot-dir /var/lib/bcserved -wal-dir /var/lib/bcserved/wal
//	bcserved -addr :8081 -follow http://leader:8080 -snapshot-dir /var/lib/bcserved-replica
//	bcserved -addr :8080 -graph graph.txt -log-format json -ops-addr 127.0.0.1:6060
//
// When -snapshot-dir contains a snapshot from a previous run it is restored
// (and -graph is ignored); otherwise the daemon starts from -graph, or from
// an empty graph that grows as updates referencing new vertices arrive.
// With -wal-dir, every accepted batch is also appended to a write-ahead log
// before it is applied (fsync policy set by -fsync), and on startup the log
// tail not covered by the restored snapshot is replayed — so even a kill -9
// loses no acknowledged update. Without a snapshot directory, a restart
// must be given the same -graph/-sample flags so the replay starts from the
// same base state.
//
// With -follow the daemon runs as a read-only replica of the given leader
// (any bcserved with a -wal-dir): it bootstraps from the leader's snapshot
// (or its own local one), tails and applies the leader's write-ahead log,
// serves every read endpoint locally — with scores bit-identical to the
// leader's at the same log sequence — and answers writes with 307 to the
// leader. POST /v1/replication/promote turns it into a writable primary
// (durably, when a -wal-dir was given).
//
// Diagnostics go to stderr as structured logs (-log-level, -log-format).
// Profiling and introspection endpoints (net/http/pprof under /debug/pprof/,
// expvar under /debug/vars) are mounted on the serving mux, or on a separate
// listener when -ops-addr is given (keeping them off the public port).
//
// See README.md for the endpoint reference and an example curl session.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/engine"
	"streambc/internal/graph"
	"streambc/internal/obs"
	"streambc/internal/replication"
	"streambc/internal/server"
	"streambc/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port)")
		graphPath    = flag.String("graph", "", "edge-list file of the initial graph (ignored when a snapshot is restored)")
		directed     = flag.Bool("directed", false, "treat the graph as directed")
		workers      = flag.Int("workers", 1, "number of parallel workers")
		diskDir      = flag.String("disk", "", "keep the betweenness data out of core in this directory (alias of -store-dir)")
		storeDir     = flag.String("store-dir", "", "keep the betweenness data out of core in this directory (sharded segment-file layout, one store per worker)")
		storeSegRecs = flag.Int("store-segment-records", 0, "source records per out-of-core segment file (0 = default; needs -store-dir or -disk)")
		snapshotDir  = flag.String("snapshot-dir", "", "directory for snapshots (enables restore-on-start and snapshot-on-shutdown)")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "period of automatic snapshots (0 disables; needs -snapshot-dir)")
		walDir       = flag.String("wal-dir", "", "directory for the write-ahead log (makes accepted updates durable and replays the uncovered tail on start; on a -follow replica, used only after a promotion)")
		fsyncPolicy  = flag.String("fsync", "batch", "WAL fsync policy: \"batch\" (per accepted batch), \"off\", or an interval like \"200ms\"")
		walSegBytes  = flag.Int64("wal-segment-bytes", 64<<20, "WAL segment rotation threshold in bytes")
		maxQueue     = flag.Int("max-queue", 65536, "ingest queue capacity before updates are rejected with 503")
		maxBatch     = flag.Int("max-batch", 256, "largest update batch shipped to the engine in one call")
		sample       = flag.Int("sample", 0, "approximate mode: maintain only k uniformly sampled sources, scaling scores by n/k (0 = exact; ignored when a sampled snapshot is restored)")
		sampleSeed   = flag.Int64("sample-seed", 1, "random seed of the source sample")
		follow       = flag.String("follow", "", "run as a read-only replica of the leader at this base URL (e.g. http://leader:8080)")
		shardSpec    = flag.String("shard", "", "run as write-path shard i/N behind bcrouter (e.g. 0/3): the engine accumulates betweenness only over source stride i of N; every shard of a cluster must share -graph/-directed/-sample/-sample-seed and have its own -wal-dir and -snapshot-dir")
		readyMaxLag  = flag.Uint64("ready-max-lag", 1024, "replica readiness: /readyz reports ready only within this many WAL records of the leader")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat    = flag.String("log-format", "text", "log encoding: text or json")
		slowReq      = flag.Duration("slow-request", time.Second, "log a warning for HTTP requests slower than this (0 disables)")
		opsAddr      = flag.String("ops-addr", "", "serve /debug/pprof/ and /debug/vars on this separate address instead of the main listener")
		traceRing    = flag.Int("trace-ring", 256, "ingest trace ring capacity served by /v1/debug/trace")
		showVersion  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println("bcserved", version.Version)
		return
	}
	if *workers < 1 {
		usageError("-workers must be at least 1")
	}
	if *maxBatch < 1 {
		usageError("-max-batch must be at least 1")
	}
	if *maxQueue < 1 {
		usageError("-max-queue must be at least 1")
	}
	if *sample < 0 {
		usageError("-sample must be 0 (exact) or a positive sample size")
	}
	if *storeDir != "" && *diskDir != "" && *storeDir != *diskDir {
		usageError("-store-dir and -disk name different directories; use one (they are aliases)")
	}
	if *storeDir == "" {
		*storeDir = *diskDir
	}
	if *storeSegRecs < 0 || *storeSegRecs > bdstore.MaxSegmentRecords {
		usageError(fmt.Sprintf("-store-segment-records must be between 1 and %d (or 0 for the default)", bdstore.MaxSegmentRecords))
	}
	if *storeSegRecs > 0 && *storeDir == "" {
		usageError("-store-segment-records needs -store-dir (or -disk)")
	}
	fsyncMode, fsyncInterval, err := server.ParseFsyncPolicy(*fsyncPolicy)
	if err != nil {
		usageError(err.Error())
	}
	if *walDir == "" && *fsyncPolicy != "batch" {
		usageError("-fsync needs -wal-dir")
	}
	if *walSegBytes < 4096 {
		usageError("-wal-segment-bytes must be at least 4096")
	}
	if *follow != "" {
		if *graphPath != "" {
			usageError("-graph cannot be combined with -follow (a replica bootstraps from the leader's snapshot)")
		}
		if *sample > 0 {
			usageError("-sample cannot be combined with -follow (the source sample comes from the leader's snapshot)")
		}
	}
	shardIdx, shardCnt, err := parseShardSpec(*shardSpec)
	if err != nil {
		usageError(err.Error())
	}
	if shardCnt > 1 {
		if *follow != "" {
			usageError("-shard cannot be combined with -follow (shards replicate through the router's fanout; run followers of individual shards instead)")
		}
		if *walDir == "" {
			usageError("-shard needs -wal-dir (the shard's own log is its crash durability and the router's catch-up source)")
		}
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		usageError(err.Error())
	}
	logger = logger.With(obs.KeyComponent, "bcserved")

	reg := obs.NewRegistry()
	cfg := engine.Config{Workers: *workers}
	if shardCnt > 1 {
		cfg.ShardIndex, cfg.ShardCount = shardIdx, shardCnt
	}
	if *storeDir != "" {
		if err := os.MkdirAll(*storeDir, 0o755); err != nil {
			fatal(logger, "creating disk store directory failed", "error", err)
		}
		cfg.Store = engine.DiskFactoryOpts(*storeDir, bdstore.Options{SegmentRecords: *storeSegRecs})
	}
	walCfg := server.WALConfig{
		Dir:          *walDir,
		SegmentBytes: *walSegBytes,
		Mode:         fsyncMode,
		Interval:     fsyncInterval,
	}
	srvCfg := server.Config{
		SnapshotDir:      *snapshotDir,
		SnapshotInterval: *snapInterval,
		MaxQueue:         *maxQueue,
		MaxBatch:         *maxBatch,
		ReadyMaxLag:      *readyMaxLag,
		Obs:              reg,
		Logger:           logger,
		SlowRequest:      *slowReq,
		TraceCapacity:    *traceRing,
	}

	if *follow != "" {
		runFollower(*addr, *opsAddr, *follow, cfg, srvCfg, walCfg, reg, logger)
		return
	}

	// The primary's engine lives for the whole process, so it can own the
	// per-worker metric registrations. (A replica's engine is replaced on
	// re-bootstrap and must leave Config.Obs nil — see runFollower.)
	cfg.Obs = reg
	eng, err := buildEngine(*snapshotDir, *graphPath, *directed, cfg, *sample, *sampleSeed, logger)
	if err != nil {
		fatal(logger, "engine start failed", "error", err)
	}
	defer eng.Close()
	if eng.Sampled() {
		logger.Info("approximate mode",
			"sampled", eng.SampleSize(), "vertices", eng.Graph().N(), "scale", eng.Scale())
	}

	var wal *server.WAL
	if *walDir != "" {
		wal, err = server.OpenWAL(walCfg, eng.WALOffset())
		if err != nil {
			fatal(logger, "opening write-ahead log failed", "error", err)
		}
		if eng.Sharded() {
			// The shard flavour of replay additionally rebuilds the response
			// cache of the final logged record, so a router retrying it after
			// the crash gets the original bytes instead of a sequence gap.
			replayed, last, err := server.RecoverShardState(wal, eng, *maxBatch, *snapshotDir)
			if err != nil {
				fatal(logger, "replaying shard write-ahead log failed", "error", err)
			}
			srvCfg.ShardLast = last
			if replayed > 0 {
				logger.Info("write-ahead log replayed",
					"updates", replayed, obs.KeySeq, wal.Seq())
			}
		} else {
			replayed, err := server.ReplayWAL(wal, eng, *maxBatch)
			if err != nil {
				fatal(logger, "replaying write-ahead log failed", "error", err)
			}
			if replayed > 0 {
				logger.Info("write-ahead log replayed",
					"updates", replayed, obs.KeySeq, wal.Seq())
			}
		}
	}

	srvCfg.WAL = wal
	srv := server.New(eng, srvCfg)
	srv.Start()
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	startOps(mux, *opsAddr, logger)
	serve(newHTTPServer(*addr, mux), logger, func() {
		args := []any{
			"version", version.Version, "addr", *addr,
			"n", eng.Graph().N(), "m", eng.Graph().M(), "workers", eng.Workers(),
		}
		if eng.Sharded() {
			args = append(args, "shard", fmt.Sprintf("%d/%d", eng.ShardIndex(), eng.ShardCount()))
		}
		logger.Info("serving", args...)
	}, func() {
		if err := srv.Close(); err != nil {
			logger.Error("close failed", "error", err)
		} else if *snapshotDir != "" {
			logger.Info("final snapshot written", "dir", *snapshotDir)
		}
	})
}

// runFollower is the -follow mode: bootstrap a replica from the leader (or a
// local snapshot), serve reads while tailing the leader's write-ahead log,
// and expose POST /v1/replication/promote for failover.
func runFollower(addr, opsAddr, leaderURL string, cfg engine.Config, srvCfg server.Config, walCfg server.WALConfig, reg *obs.Registry, logger *slog.Logger) {
	client := replication.NewClient(leaderURL)
	eng, err := replication.Bootstrap(context.Background(), client, srvCfg.SnapshotDir, cfg)
	if err != nil {
		fatal(logger, "bootstrapping replica failed", "leader", leaderURL, "error", err)
	}
	defer eng.Close()
	logger.Info("replica bootstrapped",
		obs.KeySeq, eng.WALOffset(), "n", eng.Graph().N(), "m", eng.Graph().M())

	srvCfg.Replica = true
	srvCfg.LeaderURL = leaderURL
	srv := server.New(eng, srvCfg)
	tailCtx, cancelTail := context.WithCancel(context.Background())
	defer cancelTail()
	tailer := replication.NewTailer(client, srv, replication.TailerConfig{
		Rebootstrap: func(st *engine.SnapshotState) error {
			return srv.SwapEngine(func() (*engine.Engine, error) {
				// cfg.Obs stays nil here: this engine is disposable (every
				// re-bootstrap builds a fresh one) and a second registration
				// of the engine families would panic.
				return engine.RestoreEngine(st, cfg)
			})
		},
		Log: logger,
		Obs: reg,
	})
	srv.SetReplicationStats(tailer.Stats)
	srv.Start()
	tailStopped := make(chan struct{})
	go func() {
		defer close(tailStopped)
		if err := tailer.Run(tailCtx); err != nil {
			// Terminal replication failure — divergence, a failed
			// re-bootstrap, or an engine failure mid-apply: the replica can
			// never advance again, and in the failure cases its state may no
			// longer be trusted. Exit loudly so the orchestrator restarts
			// (and re-bootstraps) it, rather than serving ever-staler or
			// untrusted data behind a green liveness probe. A leader that is
			// merely down is NOT terminal: the tailer retries that forever.
			fatal(logger, "replication failed", "error", err)
		}
	}()
	stopTailing := func() bool {
		cancelTail()
		select {
		case <-tailStopped:
			return true
		case <-time.After(30 * time.Second):
			return false
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	pm := &promoter{srv: srv, stopTailing: stopTailing, walCfg: walCfg, log: logger}
	mux.HandleFunc("POST /v1/replication/promote", pm.handle)
	startOps(mux, opsAddr, logger)
	serve(newHTTPServer(addr, mux), logger, func() {
		logger.Info("replica serving",
			"version", version.Version, "leader", leaderURL, "addr", addr,
			"n", eng.Graph().N(), "m", eng.Graph().M())
	}, func() {
		// Stop replicating before the final snapshot so the snapshot
		// captures the last applied sequence, then close the serving layer.
		stopTailing()
		if err := srv.Close(); err != nil {
			logger.Error("close failed", "error", err)
		}
	})
}

// promoter serialises the one-way replica-to-primary transition.
type promoter struct {
	mu          sync.Mutex
	promoted    bool
	srv         *server.Server
	stopTailing func() bool // cancel the tailer, wait for it; false on timeout
	walCfg      server.WALConfig
	log         *slog.Logger
}

// handle is POST /v1/replication/promote: stop tailing, optionally open a
// fresh write-ahead log at the applied sequence, and start accepting writes.
func (p *promoter) handle(w http.ResponseWriter, _ *http.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	httpErr := func(status int, err error) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]any{"error": err.Error()}) //nolint:errcheck
	}
	if p.promoted {
		httpErr(http.StatusConflict, errors.New("already promoted"))
		return
	}
	if !p.stopTailing() {
		httpErr(http.StatusInternalServerError, errors.New("replication tailer did not stop"))
		return
	}
	seq := p.srv.AppliedWALSeq()
	if p.walCfg.Dir != "" {
		cfg := p.walCfg
		// The replica's state at seq came over replication, not from a local
		// log: a brand-new log legitimately begins there.
		cfg.AllowFresh = true
		wal, err := server.OpenWAL(cfg, seq)
		if err != nil {
			httpErr(http.StatusInternalServerError, fmt.Errorf("opening write-ahead log: %w", err))
			return
		}
		if got := wal.Seq(); got != seq {
			// The directory held a pre-existing log extending past the
			// applied sequence — some earlier incarnation's history, not
			// this replica's. Appending after it would interleave foreign
			// records into recovery. Refuse: the operator must point the
			// promotion at an empty WAL directory.
			wal.Close() //nolint:errcheck
			httpErr(http.StatusConflict, fmt.Errorf(
				"WAL directory %s already holds records through sequence %d but the replica is at %d; promote needs an empty WAL directory",
				cfg.Dir, got, seq))
			return
		}
		if err := p.srv.AttachWAL(wal); err != nil {
			wal.Close() //nolint:errcheck
			httpErr(http.StatusInternalServerError, err)
			return
		}
	}
	if err := p.srv.Promote(); err != nil {
		httpErr(http.StatusInternalServerError, err)
		return
	}
	p.promoted = true
	// Make the promotion point durable immediately: the fresh WAL begins at
	// seq, so a snapshot covering seq must exist before the next crash — an
	// older snapshot would ask recovery to replay records this log never
	// held. A failed snapshot does not undo the promotion (the WAL is
	// already making writes durable); it is reported so the operator
	// retries via POST /v1/snapshot.
	snapErr := ""
	if _, err := p.srv.Snapshot(); err != nil && !errors.Is(err, server.ErrNoSnapshotDir) {
		snapErr = err.Error()
		p.log.Error("promotion snapshot failed (retry with POST /v1/snapshot)", "error", err)
	}
	p.log.Info("promoted to primary", obs.KeySeq, seq, "durable", p.walCfg.Dir != "")
	resp := map[string]any{
		"promoted":     true,
		"wal_sequence": seq,
		"durable":      p.walCfg.Dir != "",
	}
	if snapErr != "" {
		resp["snapshot_error"] = snapErr
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// opsMux builds the introspection surface: the pprof handlers mounted
// explicitly (never via DefaultServeMux, which package pprof also populates)
// and the expvar JSON dump (cmdline + memstats).
func opsMux(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}

// startOps mounts the introspection endpoints: on the main mux when opsAddr
// is empty, or on their own listener (so the public port never exposes
// profiling) otherwise. The separate listener deliberately has no write
// timeout — CPU profiles stream for their whole -seconds duration.
func startOps(main *http.ServeMux, opsAddr string, logger *slog.Logger) {
	if opsAddr == "" {
		opsMux(main)
		return
	}
	mux := http.NewServeMux()
	opsMux(mux)
	srv := &http.Server{
		Addr:              opsAddr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		logger.Info("ops listener up", "addr", opsAddr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("ops listener failed", "addr", opsAddr, "error", err)
		}
	}()
}

// newHTTPServer wraps a handler in an http.Server with slowloris-resistant
// timeouts. WriteTimeout is generous rather than absent because the
// streaming replication routes clear their own write deadline
// (http.ResponseController), so only stuck plain-JSON responses are cut.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// serve runs httpSrv until SIGINT/SIGTERM, then shuts down the HTTP
// listener and calls closeDown (which owns stopping the serving layer).
func serve(httpSrv *http.Server, logger *slog.Logger, onUp, closeDown func()) {
	errc := make(chan error, 1)
	go func() {
		onUp()
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, "listener failed", "error", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("HTTP shutdown failed", "error", err)
	}
	closeDown()
}

// buildEngine restores the engine from the latest snapshot when one exists,
// and falls back to the -graph file (or an empty graph) otherwise. A sample
// size > 0 selects the approximate mode: the sample is drawn from the initial
// graph, unless a restored snapshot already carries one (which wins — its
// scores are only coherent with the sample they were accumulated over).
func buildEngine(snapshotDir, graphPath string, directed bool, cfg engine.Config, sample int, sampleSeed int64, logger *slog.Logger) (*engine.Engine, error) {
	if snapshotDir != "" {
		st, err := server.LoadSnapshotFile(snapshotDir)
		switch {
		case err == nil:
			logger.Info("restoring snapshot",
				"n", st.Graph.N(), "m", st.Graph.M(), "applied", st.Applied)
			if st.Sources == nil && sample > 0 {
				if err := configureSampling(&cfg, st.Graph.N(), sample, sampleSeed); err != nil {
					return nil, err
				}
			}
			return engine.RestoreEngine(st, cfg)
		case errors.Is(err, os.ErrNotExist):
			// First start: fall through to -graph.
		default:
			return nil, fmt.Errorf("restoring snapshot: %w", err)
		}
	}
	var g *graph.Graph
	if graphPath != "" {
		var err error
		if g, err = graph.LoadEdgeListFile(graphPath, directed); err != nil {
			return nil, err
		}
	} else if directed {
		g = graph.NewDirected(0)
	} else {
		g = graph.New(0)
	}
	if sample > 0 {
		if err := configureSampling(&cfg, g.N(), sample, sampleSeed); err != nil {
			return nil, err
		}
	}
	return engine.New(g, cfg)
}

// configureSampling draws the source sample for an n-vertex graph into cfg.
func configureSampling(cfg *engine.Config, n, sample int, sampleSeed int64) error {
	if n == 0 {
		return fmt.Errorf("-sample needs an initial graph (or a snapshot) to sample sources from")
	}
	if sample > n {
		sample = n
	}
	cfg.Sources = bc.SampleSources(n, sample, sampleSeed)
	cfg.Scale = float64(n) / float64(sample)
	return nil
}

// parseShardSpec parses the -shard flag: "" means unsharded (shard 0 of 1),
// otherwise "i/N" with 0 <= i < N.
func parseShardSpec(s string) (idx, cnt int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard: want i/N (e.g. 0/3), got %q", s)
	}
	i, err1 := strconv.Atoi(a)
	n, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("-shard: want i/N (e.g. 0/3), got %q", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard: index %d out of range for %d shards", i, n)
	}
	return i, n, nil
}

// fatal logs at error level and exits non-zero (the structured replacement
// for log.Fatalf).
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

// usageError reports a flag-validation failure with the usage text and exits
// with the conventional status 2.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "bcserved:", msg)
	flag.Usage()
	os.Exit(2)
}
