// Command bcserved is the online serving daemon of the streaming betweenness
// framework: it loads (or restores) a graph, runs the offline initialisation
// and then serves an HTTP/JSON API for continuous edge updates and
// low-latency betweenness queries, with periodic and on-shutdown snapshots
// for restart durability.
//
// Examples:
//
//	bcserved -addr :8080 -graph graph.txt -workers 4
//	bcserved -addr :8080 -snapshot-dir /var/lib/bcserved -snapshot-interval 1m
//
// When -snapshot-dir contains a snapshot from a previous run it is restored
// (and -graph is ignored); otherwise the daemon starts from -graph, or from
// an empty graph that grows as updates referencing new vertices arrive.
//
// See README.md for the endpoint reference and an example curl session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streambc/internal/engine"
	"streambc/internal/graph"
	"streambc/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port)")
		graphPath    = flag.String("graph", "", "edge-list file of the initial graph (ignored when a snapshot is restored)")
		directed     = flag.Bool("directed", false, "treat the graph as directed")
		workers      = flag.Int("workers", 1, "number of parallel workers")
		diskDir      = flag.String("disk", "", "keep the betweenness data out of core in this directory")
		snapshotDir  = flag.String("snapshot-dir", "", "directory for snapshots (enables restore-on-start and snapshot-on-shutdown)")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "period of automatic snapshots (0 disables; needs -snapshot-dir)")
		maxQueue     = flag.Int("max-queue", 65536, "ingest queue capacity before updates are rejected with 503")
		maxBatch     = flag.Int("max-batch", 256, "largest update batch shipped to the engine in one call")
	)
	flag.Parse()

	cfg := engine.Config{Workers: *workers}
	if *diskDir != "" {
		if err := os.MkdirAll(*diskDir, 0o755); err != nil {
			log.Fatalf("bcserved: creating disk store directory: %v", err)
		}
		cfg.Store = engine.DiskFactory(*diskDir)
	}

	eng, err := buildEngine(*snapshotDir, *graphPath, *directed, cfg)
	if err != nil {
		log.Fatalf("bcserved: %v", err)
	}
	defer eng.Close()

	srv := server.New(eng, server.Config{
		SnapshotDir:      *snapshotDir,
		SnapshotInterval: *snapInterval,
		MaxQueue:         *maxQueue,
		MaxBatch:         *maxBatch,
	})
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("bcserved: serving on http://%s (n=%d m=%d workers=%d)",
			*addr, eng.Graph().N(), eng.Graph().M(), eng.Workers())
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("bcserved: received %v, shutting down", sig)
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("bcserved: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("bcserved: HTTP shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("bcserved: %v", err)
	} else if *snapshotDir != "" {
		log.Printf("bcserved: final snapshot written to %s", *snapshotDir)
	}
}

// buildEngine restores the engine from the latest snapshot when one exists,
// and falls back to the -graph file (or an empty graph) otherwise.
func buildEngine(snapshotDir, graphPath string, directed bool, cfg engine.Config) (*engine.Engine, error) {
	if snapshotDir != "" {
		st, err := server.LoadSnapshotFile(snapshotDir)
		switch {
		case err == nil:
			log.Printf("bcserved: restoring snapshot (n=%d m=%d, %d updates applied)",
				st.Graph.N(), st.Graph.M(), st.Applied)
			return engine.RestoreEngine(st, cfg)
		case errors.Is(err, os.ErrNotExist):
			// First start: fall through to -graph.
		default:
			return nil, fmt.Errorf("restoring snapshot: %w", err)
		}
	}
	var g *graph.Graph
	if graphPath != "" {
		var err error
		if g, err = graph.LoadEdgeListFile(graphPath, directed); err != nil {
			return nil, err
		}
	} else if directed {
		g = graph.NewDirected(0)
	} else {
		g = graph.New(0)
	}
	return engine.New(g, cfg)
}
