// Command bcrun maintains betweenness centrality online for an evolving
// graph: it loads a graph, runs the offline initialisation, replays an update
// stream and reports the resulting scores. It can run entirely in memory, out
// of core, with several parallel workers, and — with -serve / -cluster — as a
// coordinator plus remote RPC workers on different machines.
//
// Examples:
//
//	bcrun -graph graph.txt -updates updates.txt -top 10
//	bcrun -graph graph.txt -updates updates.txt -workers 4 -disk /tmp/bd -out scores.txt
//	bcrun -graph graph.txt -updates updates.txt -sample 100   # approximate mode
//	bcrun -serve 127.0.0.1:7001                    # on each worker machine
//	bcrun -graph g.txt -updates u.txt -cluster 127.0.0.1:7001,127.0.0.1:7002
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"

	"streambc"
	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/engine"
	"streambc/internal/graph"
	"streambc/internal/obs"
	"streambc/internal/version"
)

// logger carries diagnostics to stderr (structured, per -log-level and
// -log-format); computed results stay on stdout as plain text.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	var (
		graphPath   = flag.String("graph", "", "edge-list file of the initial graph")
		updatesPath = flag.String("updates", "", "update-stream file (see bcgen -stream)")
		directed    = flag.Bool("directed", false, "treat the graph as directed")
		workers     = flag.Int("workers", 1, "number of parallel workers")
		diskDir     = flag.String("disk", "", "keep the betweenness data out of core in this directory (alias of -store-dir)")
		storeDir    = flag.String("store-dir", "", "keep the betweenness data out of core in this directory (sharded segment-file layout, one store per worker)")
		storeSegRec = flag.Int("store-segment-records", 0, "source records per out-of-core segment file (0 = default; needs -store-dir or -disk)")
		top         = flag.Int("top", 10, "print the top-k vertices and edges")
		outPath     = flag.String("out", "", "write all vertex and edge scores to this file")
		online      = flag.Bool("online", false, "replay the stream using its timestamps and report missed updates")
		batch       = flag.Int("batch", 1, "apply updates in batches of this size (one store load/save per affected source per batch)")
		sample      = flag.Int("sample", 0, "approximate mode: maintain only k uniformly sampled sources, scaling scores by n/k (0 = exact)")
		sampleSeed  = flag.Int64("sample-seed", 1, "random seed of the source sample")
		shardSpec   = flag.String("shard", "", "compute only write-path shard i/N of the scores (e.g. 0/3): partial betweenness over source stride i of N; the partials of all N shards sum to the full scores bit-for-bit")
		serve       = flag.String("serve", "", "run as an RPC worker listening on this address (host:port)")
		cluster     = flag.String("cluster", "", "comma-separated worker addresses to use as a distributed cluster")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat   = flag.String("log-format", "text", "log encoding: text or json")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println("bcrun", version.Version)
		return
	}
	l, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		usageError(err.Error())
	}
	logger = l.With(obs.KeyComponent, "bcrun")
	if *workers < 1 {
		usageError("-workers must be at least 1")
	}
	if *batch < 1 {
		usageError("-batch must be at least 1")
	}
	if *sample < 0 {
		usageError("-sample must be 0 (exact) or a positive sample size")
	}
	if *top < 0 {
		usageError("-top must not be negative")
	}
	if *storeDir != "" && *diskDir != "" && *storeDir != *diskDir {
		usageError("-store-dir and -disk name different directories; use one (they are aliases)")
	}
	if *storeDir == "" {
		*storeDir = *diskDir
	}
	if *storeSegRec < 0 || *storeSegRec > bdstore.MaxSegmentRecords {
		usageError(fmt.Sprintf("-store-segment-records must be between 1 and %d (or 0 for the default)", bdstore.MaxSegmentRecords))
	}
	if *storeSegRec > 0 && *storeDir == "" {
		usageError("-store-segment-records needs -store-dir (or -disk)")
	}
	shardIdx, shardCnt, err := parseShardSpec(*shardSpec)
	if err != nil {
		usageError(err.Error())
	}
	if shardCnt > 1 && (*cluster != "" || *serve != "") {
		usageError("-shard cannot be combined with -cluster or -serve")
	}

	if *serve != "" {
		runWorker(*serve)
		return
	}
	if *graphPath == "" {
		fatal(fmt.Errorf("missing -graph (or -serve)"))
	}
	g, err := streambc.LoadEdgeListFile(*graphPath, *directed)
	if err != nil {
		fatal(err)
	}
	var updates []streambc.Update
	if *updatesPath != "" {
		f, err := os.Open(*updatesPath)
		if err != nil {
			fatal(err)
		}
		updates, err = graph.LoadUpdateStream(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	if *cluster != "" {
		runCluster(g, updates, strings.Split(*cluster, ","), *batch, *top, *sample, *sampleSeed)
		return
	}

	opts := []streambc.Option{streambc.WithWorkers(*workers)}
	if *storeDir != "" {
		opts = append(opts, streambc.WithDiskStore(*storeDir))
		if *storeSegRec > 0 {
			opts = append(opts, streambc.WithStoreOptions(streambc.StoreOptions{SegmentRecords: *storeSegRec}))
		}
	}
	if *sample > 0 {
		opts = append(opts, streambc.WithSampledSources(*sample, *sampleSeed))
	}
	if shardCnt > 1 {
		opts = append(opts, streambc.WithShard(shardIdx, shardCnt))
	}
	s, err := streambc.New(g, opts...)
	if err != nil {
		fatal(err)
	}
	defer s.Close()

	if *online {
		rep, err := s.Replay(updates)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("updates=%d missed=%d (%.2f%%) avg-delay=%.3fs max-delay=%.3fs total-processing=%.3fs\n",
			rep.Updates, rep.Missed, rep.MissedFraction*100, rep.AvgDelay, rep.MaxDelay, rep.TotalProcessing)
	} else if len(updates) > 0 {
		if *batch > 1 {
			for off := 0; off < len(updates); off += *batch {
				end := min(off+*batch, len(updates))
				if _, err := s.ApplyBatch(updates[off:end]); err != nil {
					fatal(err)
				}
			}
		} else if _, err := s.ApplyAll(updates); err != nil {
			fatal(err)
		}
	}

	st := s.Stats()
	fmt.Printf("graph: %d vertices, %d edges; updates applied: %d; sources skipped: %d, updated: %d\n",
		s.Graph().N(), s.Graph().M(), st.UpdatesApplied, st.SourcesSkipped, st.SourcesUpdated)
	if s.Sampled() {
		fmt.Printf("approximate mode: %d of %d sources sampled (scale %.3f) — scores are unbiased estimates\n",
			len(s.SampledSources()), s.Graph().N(), s.SampleScale())
	}
	if shardCnt > 1 {
		fmt.Printf("shard %d/%d: partial scores over this shard's source stride — sum all %d shards for the full scores\n",
			shardIdx, shardCnt, shardCnt)
	}
	printTop(s.Result(), *top)
	if *outPath != "" {
		if err := writeScores(s.Result(), *outPath); err != nil {
			fatal(err)
		}
	}
}

func runWorker(addr string) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("worker listening", "addr", l.Addr().String())
	engine.ServeWorker(l, engine.NewWorkerServer())
	select {} // serve until killed
}

func runCluster(g *streambc.Graph, updates []streambc.Update, addrs []string, batch, top, sample int, sampleSeed int64) {
	var sources []int
	if sample > 0 {
		sources = bc.SampleSources(g.N(), sample, sampleSeed)
	}
	cluster, err := engine.NewSampledCluster(g, addrs, nil, sources, 0)
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()
	for off := 0; off < len(updates); off += batch {
		end := min(off+batch, len(updates))
		if _, err := cluster.ApplyBatch(updates[off:end]); err != nil {
			fatal(fmt.Errorf("updates %d-%d: %w", off, end-1, err))
		}
	}
	fmt.Printf("cluster of %d workers: %d vertices, %d edges, %d updates applied\n",
		len(addrs), cluster.Graph().N(), cluster.Graph().M(), len(updates))
	if cluster.Sampled() {
		fmt.Printf("approximate mode: %d of %d sources sampled (scale %.3f) — scores are unbiased estimates\n",
			len(cluster.SampledSources()), cluster.Graph().N(), cluster.Scale())
	}
	printTop(cluster.Result(), top)
}

func printTop(res *streambc.Result, k int) {
	fmt.Printf("top %d vertices by betweenness:\n", k)
	for _, vs := range streambc.TopVertices(res, k) {
		fmt.Printf("  v%-8d %.2f\n", vs.Vertex, vs.Score)
	}
	fmt.Printf("top %d edges by betweenness:\n", k)
	for _, es := range streambc.TopEdges(res, k) {
		fmt.Printf("  (%d,%d)  %.2f\n", es.Edge.U, es.Edge.V, es.Score)
	}
}

func writeScores(res *streambc.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for v, score := range res.VBC {
		if _, err := fmt.Fprintf(f, "vertex %d %g\n", v, score); err != nil {
			return err
		}
	}
	edges := make([]streambc.Edge, 0, len(res.EBC))
	for e := range res.EBC {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(f, "edge %d %d %g\n", e.U, e.V, res.EBC[e]); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	logger.Error("fatal", "error", err)
	os.Exit(1)
}

// usageError reports a flag-validation failure with the usage text and exits
// with the conventional status 2.
// parseShardSpec parses an "i/N" shard position; the empty string means the
// whole source pool (one shard of one). Mirrors bcserved's flag of the same
// name so offline runs can reproduce one serving shard's partial scores.
func parseShardSpec(s string) (idx, cnt int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard: want i/N (e.g. 0/3), got %q", s)
	}
	i, err1 := strconv.Atoi(a)
	n, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("-shard: want i/N (e.g. 0/3), got %q", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard: index %d out of range for %d shards", i, n)
	}
	return i, n, nil
}

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "bcrun:", msg)
	flag.Usage()
	os.Exit(2)
}
