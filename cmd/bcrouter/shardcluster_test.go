package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"streambc/internal/obs"
)

// TestShardClusterSIGKILL is the end-to-end sharding test (and the CI
// shard-cluster step): it builds the real bcserved and bcrouter binaries,
// runs a 3-shard cluster behind a router, streams updates through the
// router's HTTP API, SIGKILLs one shard mid-stream (no graceful shutdown),
// restarts it from its own WAL and snapshot directories, and lets the
// router's fanout retries re-join it. At the end, every score the router
// serves must be byte-identical to a clean, uninterrupted single-process
// replay of the same stream on bcserved -workers 3 — the merge's bitwise
// contract, across processes and across a kill.
func TestShardClusterSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the bcserved and bcrouter binaries")
	}
	binDir := t.TempDir()
	served := filepath.Join(binDir, "bcserved")
	routerBin := filepath.Join(binDir, "bcrouter")
	for bin, pkg := range map[string]string{served: "../bcserved", routerBin: "."} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			t.Fatalf("building %s: %v", pkg, err)
		}
	}

	graphFile, edges := writeClusterGraph(t, 30, 60, 31)
	batches := makeClusterBatches(30, edges, 12, 6, 37)
	total := 0
	for _, b := range batches {
		total += len(b)
	}

	// Start the 3 shards, each with its own WAL and snapshot directories.
	const shards = 3
	shardArgs := make([][]string, shards)
	procs := make([]*proc, shards)
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		dir := t.TempDir()
		shardArgs[i] = []string{
			"-graph", graphFile, "-shard", fmt.Sprintf("%d/%d", i, shards),
			"-wal-dir", filepath.Join(dir, "wal"), "-snapshot-dir", dir,
			"-snapshot-interval", "0", "-fsync", "batch", "-max-batch", "8",
			"-addr", freeClusterAddr(t),
		}
		procs[i] = startProc(t, served, shardArgs[i])
		urls[i] = procs[i].base
	}
	rt := startProc(t, routerBin, []string{
		"-addr", freeClusterAddr(t),
		"-shards", strings.Join(urls, ","),
		"-retry-interval", "100ms", "-apply-timeout", "5s", "-status-interval", "200ms",
	})

	// Stream the batches through the router, one record per POST (the next
	// batch is not sent until the previous record is merged, so the record
	// boundaries are exactly the batch boundaries and the clean replay below
	// can reproduce them).
	posts := 0
	post := func(b []map[string]any) {
		t.Helper()
		rt.post(t, "/v1/updates", map[string]any{"updates": b})
		posts++
	}
	for i, b := range batches {
		switch i {
		case 4:
			// Snapshot mid-stream: the kill below lands on a shard whose
			// recovery starts from a snapshot and replays only the WAL tail.
			rt.post(t, "/v1/snapshot", map[string]any{})
			post(b)
			// Mid-load, all shards up: the router's federation plane must
			// serve a parseable shard-labelled exposition and a full-health
			// cluster status.
			checkClusterObservability(t, rt, shards, -1)
		case 7:
			// SIGKILL shard 1 between records, then keep streaming: the
			// fanout stalls retrying the dead shard while the other two wait.
			if err := procs[1].cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			procs[1].cmd.Wait() //nolint:errcheck // killed on purpose
			post(b)
			// The record cannot complete with the shard down.
			time.Sleep(300 * time.Millisecond)
			if got := rt.stats(t)["merged_sequence"]; int(got.(float64)) != posts-1 {
				t.Fatalf("merged_sequence = %v with a shard down, want %d", got, posts-1)
			}
			// With a shard dead mid-record, the monitoring plane must degrade,
			// not fail: the scrape still serves with the dead shard's gauge at
			// 0, and the cluster status reports it down.
			checkClusterObservability(t, rt, shards, 1)
			// Restart the shard from its own directories (same address, same
			// WAL, same snapshots): it replays its log, rebuilds its response
			// cache, and the router's next retry lands on it.
			procs[1] = startProc(t, served, shardArgs[1])
		default:
			post(b)
		}
		rt.waitMerged(t, posts)
	}

	stats := rt.stats(t)
	if got := int(stats["updates_applied"].(float64)); got != total {
		t.Fatalf("router applied %d updates, want %d", got, total)
	}
	if stats["halted"] != false {
		t.Fatalf("router halted: %v", stats)
	}
	// Every shard — including the rejoined one — converged to the same log.
	for i := 0; i < shards; i++ {
		var st struct {
			AppliedSeq uint64 `json:"applied_sequence"`
		}
		get(t, urls[i]+"/v1/shard/status", &st)
		if st.AppliedSeq != uint64(posts) {
			t.Fatalf("shard %d at sequence %d, want %d", i, st.AppliedSeq, posts)
		}
	}

	// Clean replay: one uninterrupted bcserved with 3 workers — the engine
	// whose reduce fold the router's shard-order merge reproduces — fed the
	// identical batches.
	clean := startProc(t, served, []string{
		"-graph", graphFile, "-workers", "3", "-max-batch", "8", "-addr", freeClusterAddr(t),
	})
	for _, b := range batches {
		clean.post(t, "/v1/updates", map[string]any{"updates": b, "wait": true})
	}
	if got := int(clean.stats(t)["updates_applied"].(float64)); got != total {
		t.Fatalf("clean replay applied %d updates, want %d", got, total)
	}

	// The graphs agree, every vertex score is byte-identical, and the full
	// edge ranking (scores included) is byte-identical.
	var rg, cg map[string]any
	get(t, rt.base+"/v1/graph", &rg)
	get(t, clean.base+"/v1/graph", &cg)
	if fmt.Sprint(rg["n"], rg["m"]) != fmt.Sprint(cg["n"], cg["m"]) {
		t.Fatalf("router graph %v, clean graph %v", rg, cg)
	}
	n := int(rg["n"].(float64))
	for v := 0; v < n; v++ {
		var rs, cs struct {
			Score float64 `json:"score"`
		}
		get(t, fmt.Sprintf("%s/v1/vertices/%d", rt.base, v), &rs)
		get(t, fmt.Sprintf("%s/v1/vertices/%d", clean.base, v), &cs)
		if rs.Score != cs.Score {
			t.Fatalf("VBC[%d]: router %v, clean %v (must be bit-identical)", v, rs.Score, cs.Score)
		}
	}
	re := rawBody(t, rt.base+"/v1/top/edges?k=100000")
	ce := rawBody(t, clean.base+"/v1/top/edges?k=100000")
	if !bytes.Equal(re, ce) {
		t.Fatalf("edge rankings differ:\nrouter: %s\nclean:  %s", re, ce)
	}
	rv := rawBody(t, rt.base+"/v1/top/vertices?k=100000")
	cv := rawBody(t, clean.base+"/v1/top/vertices?k=100000")
	if !bytes.Equal(rv, cv) {
		t.Fatalf("vertex rankings differ:\nrouter: %s\nclean:  %s", rv, cv)
	}
}

// checkClusterObservability scrapes the router's federated /metrics and
// /v1/cluster/status against the real binaries: the exposition must parse
// strictly, streambc_cluster_shard_up must read 1 for every live shard and 0
// for downShard (-1 when all shards are up), live shards' families must be
// present under their shard label, and the status document must agree.
func checkClusterObservability(t *testing.T, rt *proc, shards, downShard int) {
	t.Helper()
	fams, err := obs.ParseExposition(rawBody(t, rt.base+"/metrics"))
	if err != nil {
		t.Fatalf("federated /metrics does not parse: %v", err)
	}
	up := map[string]string{}
	labelled := map[string]bool{}
	for _, f := range fams {
		if f.Name == "streambc_cluster_shard_up" {
			for _, s := range f.Samples {
				up[s.Labels] = s.Value
			}
			continue
		}
		if f.Name != "streambc_wal_appends_total" {
			continue // a family only shards export: its shard labels are the stamp
		}
		for _, s := range f.Samples {
			for i := 0; i < shards; i++ {
				if strings.Contains(s.Labels, fmt.Sprintf("shard=%q", fmt.Sprint(i))) {
					labelled[fmt.Sprint(i)] = true
				}
			}
		}
	}
	for i := 0; i < shards; i++ {
		key := fmt.Sprintf("{shard=%q}", fmt.Sprint(i))
		want := "1"
		if i == downShard {
			want = "0"
		}
		if up[key] != want {
			t.Fatalf("cluster_shard_up%s = %q, want %s", key, up[key], want)
		}
		if i != downShard && !labelled[fmt.Sprint(i)] {
			t.Fatalf("live shard %d's families missing from the federated page", i)
		}
	}
	if downShard >= 0 && labelled[fmt.Sprint(downShard)] {
		t.Fatalf("dead shard %d's families still on the federated page", downShard)
	}

	var st struct {
		ShardCount    int `json:"shard_count"`
		ShardsHealthy int `json:"shards_healthy"`
		Shards        []struct {
			Up    bool   `json:"up"`
			Error string `json:"error"`
		} `json:"shards"`
	}
	get(t, rt.base+"/v1/cluster/status", &st)
	if st.ShardCount != shards || len(st.Shards) != shards {
		t.Fatalf("cluster status shape: %+v", st)
	}
	wantHealthy := shards
	if downShard >= 0 {
		wantHealthy--
	}
	if st.ShardsHealthy != wantHealthy {
		t.Fatalf("shards_healthy = %d, want %d", st.ShardsHealthy, wantHealthy)
	}
	for i, sj := range st.Shards {
		if i == downShard {
			if sj.Up || sj.Error == "" {
				t.Fatalf("dead shard %d reported %+v", i, sj)
			}
			continue
		}
		if !sj.Up {
			t.Fatalf("live shard %d reported down: %+v", i, sj)
		}
	}
}

// proc is one running binary under test.
type proc struct {
	cmd  *exec.Cmd
	base string
}

func startProc(t *testing.T, bin string, args []string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addr := ""
	for i, a := range args {
		if a == "-addr" {
			addr = args[i+1]
		}
	}
	p := &proc{cmd: cmd, base: "http://" + addr}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s on %s did not become healthy", bin, addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (p *proc) post(t *testing.T, path string, body map[string]any) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(p.base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, data)
	}
}

func (p *proc) stats(t *testing.T) map[string]any {
	t.Helper()
	var out map[string]any
	get(t, p.base+"/v1/stats", &out)
	return out
}

// waitMerged blocks until the router has merged `records` records — the
// convergence point after every post, and the re-join point after the kill.
func (p *proc) waitMerged(t *testing.T, records int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if int(p.stats(t)["merged_sequence"].(float64)) >= records {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("router did not reach merged sequence %d", records)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func get(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func rawBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	return data
}

func freeClusterAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

// writeClusterGraph writes a deterministic connected edge list and returns
// the path plus the edge set (so the batch generator can avoid duplicate
// additions — every update in this test must be accepted, keeping the
// router's record stream and the clean replay's batch stream identical).
func writeClusterGraph(t *testing.T, n, m int, seed int64) (string, map[[2]int]bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	edges := map[[2]int]bool{}
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if u == v || edges[[2]int{u, v}] {
			return
		}
		edges[[2]int{u, v}] = true
		fmt.Fprintf(&sb, "%d %d\n", u, v)
	}
	for i := 0; i+1 < n; i++ {
		add(i, i+1)
	}
	for len(edges) < m {
		add(rng.Intn(n), rng.Intn(n))
	}
	path := filepath.Join(t.TempDir(), "graph.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, edges
}

// makeClusterBatches builds a deterministic stream of always-valid update
// batches against the live edge set: additions of absent pairs (some growing
// the graph with brand-new vertices), removals of present edges, and never
// the same edge twice in one batch — so neither side rejects or coalesces
// anything and both apply exactly the same updates in the same batches.
func makeClusterBatches(n int, edges map[[2]int]bool, batches, perBatch int, seed int64) [][]map[string]any {
	rng := rand.New(rand.NewSource(seed))
	next := n
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	var removable [][2]int
	for e := range edges {
		removable = append(removable, e)
	}
	sort.Slice(removable, func(i, j int) bool {
		if removable[i][0] != removable[j][0] {
			return removable[i][0] < removable[j][0]
		}
		return removable[i][1] < removable[j][1]
	})
	out := make([][]map[string]any, 0, batches)
	for b := 0; b < batches; b++ {
		var batch []map[string]any
		touched := map[[2]int]bool{}
		for len(batch) < perBatch {
			switch r := rng.Intn(6); {
			case r == 0 && len(removable) > 0:
				i := rng.Intn(len(removable))
				e := removable[i]
				if touched[e] {
					continue
				}
				removable = append(removable[:i], removable[i+1:]...)
				delete(edges, e)
				touched[e] = true
				batch = append(batch, map[string]any{"op": "remove", "u": e[0], "v": e[1]})
			case r == 1:
				u := rng.Intn(next)
				e := key(u, next)
				edges[e] = true
				removable = append(removable, e)
				touched[e] = true
				batch = append(batch, map[string]any{"op": "add", "u": u, "v": next})
				next++
			default:
				u, v := rng.Intn(next), rng.Intn(next)
				e := key(u, v)
				if u == v || edges[e] || touched[e] {
					continue
				}
				edges[e] = true
				removable = append(removable, e)
				touched[e] = true
				batch = append(batch, map[string]any{"op": "add", "u": u, "v": v})
			}
		}
		out = append(out, batch)
	}
	return out
}
