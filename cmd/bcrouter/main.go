// Command bcrouter fronts a cluster of bcserved write-path shards: each
// shard (started with bcserved -shard i/N) owns one stride of the source
// pool and computes partial betweenness over it; bcrouter fans every ingest
// batch to all shards as one numbered record, folds the per-update score
// deltas they return in shard order, and serves the merged scores over the
// same HTTP API a single bcserved exposes — bit-identical to a single
// process running N workers, when every shard runs one worker.
//
// Example (a 3-shard cluster):
//
//	bcserved -addr :9001 -shard 0/3 -wal-dir s0/wal -snapshot-dir s0 -graph g.txt
//	bcserved -addr :9002 -shard 1/3 -wal-dir s1/wal -snapshot-dir s1 -graph g.txt
//	bcserved -addr :9003 -shard 2/3 -wal-dir s2/wal -snapshot-dir s2 -graph g.txt
//	bcrouter -addr :8080 -shards http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//
// The -shards list must name every shard exactly once, in shard-index order;
// bcrouter verifies each shard's reported identity at startup, replays
// records a restarted shard missed from a caught-up peer's write-ahead log,
// and folds the shards' snapshots into its in-memory baseline before
// serving. Durability lives entirely in the shards (their WALs and
// snapshots); bcrouter itself is stateless and safe to restart at any time.
//
// Diagnostics go to stderr as structured logs (-log-level, -log-format);
// profiling endpoints are mounted like bcserved's (-ops-addr). bcrouter is
// also the cluster's observability front: GET /metrics re-exports every
// shard's metric families under a shard label next to the router's own,
// GET /v1/cluster/status aggregates shard position, lag and health, and
// GET /v1/debug/trace?trace=<id> stitches one ingest's distributed trace
// from the router's and the shards' span rings.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streambc/internal/obs"
	"streambc/internal/router"
	"streambc/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port)")
		shardList    = flag.String("shards", "", "comma-separated shard base URLs, in shard-index order (e.g. http://h1:9001,http://h2:9002)")
		maxQueue     = flag.Int("max-queue", 65536, "ingest queue capacity before updates are rejected with 503")
		retryEvery   = flag.Duration("retry-interval", 200*time.Millisecond, "pause between fanout retries against an unavailable shard")
		applyTimeout = flag.Duration("apply-timeout", 30*time.Second, "timeout of one fanout attempt against one shard")
		statusEvery  = flag.Duration("status-interval", 2*time.Second, "period of the background shard health poll")
		bootTimeout  = flag.Duration("bootstrap-timeout", time.Minute, "time budget for startup: reaching every shard, catch-up and the baseline fold")
		slowReq      = flag.Duration("slow-request", time.Second, "log a warning for HTTP requests slower than this (0 disables)")
		traceRing    = flag.Int("trace-ring", 256, "drain trace ring capacity served by /v1/debug/trace")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat    = flag.String("log-format", "text", "log encoding: text or json")
		opsAddr      = flag.String("ops-addr", "", "serve /debug/pprof/ and /debug/vars on this separate address instead of the main listener")
		showVersion  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println("bcrouter", version.Version)
		return
	}
	if *shardList == "" {
		usageError("-shards is required")
	}
	if *maxQueue < 1 {
		usageError("-max-queue must be at least 1")
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		usageError(err.Error())
	}
	logger = logger.With(obs.KeyComponent, "bcrouter")

	var conns []router.ShardConn
	for _, raw := range strings.Split(*shardList, ",") {
		u := strings.TrimSpace(raw)
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			usageError(fmt.Sprintf("-shards: %q is not a base URL (want scheme://host:port)", u))
		}
		conns = append(conns, router.NewHTTPShard(u))
	}
	if len(conns) == 0 {
		usageError("-shards named no shard")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *bootTimeout)
	rt, err := router.New(ctx, router.Config{
		Shards:         conns,
		MaxQueue:       *maxQueue,
		RetryInterval:  *retryEvery,
		ApplyTimeout:   *applyTimeout,
		StatusInterval: *statusEvery,
		SlowRequest:    *slowReq,
		TraceCapacity:  *traceRing,
		Logger:         logger,
	})
	cancel()
	if err != nil {
		fatal(logger, "bootstrap failed", "error", err)
	}
	rt.Start()

	mux := http.NewServeMux()
	mux.Handle("/", rt.Handler())
	startOps(mux, *opsAddr, logger)
	serve(newHTTPServer(*addr, mux), logger, func() {
		logger.Info("routing", "version", version.Version, "addr", *addr, "shards", len(conns))
	}, func() {
		if err := rt.Close(); err != nil {
			logger.Error("close failed", "error", err)
		}
	})
}

// opsMux, startOps, newHTTPServer and serve mirror bcserved's (each command
// is its own main package).
func opsMux(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}

func startOps(main *http.ServeMux, opsAddr string, logger *slog.Logger) {
	if opsAddr == "" {
		opsMux(main)
		return
	}
	mux := http.NewServeMux()
	opsMux(mux)
	srv := &http.Server{Addr: opsAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		logger.Info("ops listener up", "addr", opsAddr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("ops listener failed", "addr", opsAddr, "error", err)
		}
	}()
}

func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

func serve(httpSrv *http.Server, logger *slog.Logger, onUp, closeDown func()) {
	errc := make(chan error, 1)
	go func() {
		onUp()
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, "listener failed", "error", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("HTTP shutdown failed", "error", err)
	}
	closeDown()
}

func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "bcrouter:", msg)
	flag.Usage()
	os.Exit(2)
}
