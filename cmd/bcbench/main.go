// Command bcbench regenerates the tables and figures of the paper's
// evaluation (Section 6) on the scaled-down datasets described in DESIGN.md.
//
// Examples:
//
//	bcbench -list
//	bcbench -exp table4
//	bcbench -exp all -out results.txt
//	bcbench -exp fig5 -quick          # fast smoke run
//	bcbench -exp table4 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"streambc/internal/bdstore"
	"streambc/internal/experiments"
	"streambc/internal/obs"
	"streambc/internal/version"
)

// logger carries diagnostics to stderr (structured, per -log-level and
// -log-format); the experiment report itself stays on stdout (or -out).
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment to run (see -list) or \"all\"")
		list        = flag.Bool("list", false, "list available experiments and exit")
		quick       = flag.Bool("quick", false, "run a drastically scaled-down version (smoke test)")
		seed        = flag.Int64("seed", 42, "random seed")
		updates     = flag.Int("updates", 0, "updates per stream (0 = paper default of 100)")
		batch       = flag.Int("batch", 0, "batch size for the batched-replay experiment (0 = 16)")
		sample      = flag.Int("sample", 0, "headline sample size k for the approx experiment (0 = n/4)")
		outPath     = flag.String("out", "", "write the report to this file instead of stdout")
		scratch     = flag.String("scratch", "", "scratch directory for out-of-core stores")
		storeSegRec = flag.Int("store-segment-records", 0, "source records per out-of-core segment file (0 = default)")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat   = flag.String("log-format", "text", "log encoding: text or json")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println("bcbench", version.Version)
		return
	}
	l, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		usageError(err.Error())
	}
	logger = l.With(obs.KeyComponent, "bcbench")
	if *updates < 0 {
		usageError("-updates must not be negative")
	}
	if *batch < 0 {
		usageError("-batch must be 0 (default of 16) or at least 1")
	}
	if *sample < 0 {
		usageError("-sample must be 0 (default of n/4) or a positive sample size")
	}
	if *storeSegRec < 0 || *storeSegRec > bdstore.MaxSegmentRecords {
		usageError(fmt.Sprintf("-store-segment-records must be between 1 and %d (or 0 for the default)", bdstore.MaxSegmentRecords))
	}

	if *list {
		desc := experiments.Describe()
		for _, name := range experiments.Names() {
			fmt.Printf("%-8s %s\n", name, desc[name])
		}
		return
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := experiments.Config{
		Quick:          *quick,
		Seed:           *seed,
		UpdateCount:    *updates,
		ScratchDir:     *scratch,
		SegmentRecords: *storeSegRec,
		BatchSize:      *batch,
		SampleK:        *sample,
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	fmt.Fprintf(w, "streambc experiment report (%s, quick=%v, seed=%d)\n\n", time.Now().Format(time.RFC3339), *quick, *seed)
	start := time.Now()
	if err := experiments.Run(*exp, cfg, w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "total experiment time: %s\n", time.Since(start).Round(time.Millisecond))

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	logger.Error("fatal", "error", err)
	os.Exit(1)
}

// usageError reports a flag-validation failure with the usage text and exits
// with the conventional status 2.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "bcbench:", msg)
	flag.Usage()
	os.Exit(2)
}
