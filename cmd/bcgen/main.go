// Command bcgen generates the graphs and update streams used by the
// experiments and examples: synthetic social-like graphs, the paper's dataset
// presets, and addition/removal/mixed update streams, all written as plain
// text files that bcrun and gncommunity can read.
//
// Examples:
//
//	bcgen -preset 1k -out graph.txt -stats
//	bcgen -model holmekim -n 5000 -k 6 -closure 0.7 -out social.txt
//	bcgen -preset facebook -out fb.txt -stream mixed -count 200 -stream-out updates.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"streambc/internal/gen"
	"streambc/internal/graph"
)

func main() {
	var (
		preset    = flag.String("preset", "", "dataset preset to generate (see -list)")
		list      = flag.Bool("list", false, "list available presets and exit")
		model     = flag.String("model", "", "generator model: holmekim, ba, er, ws, planted")
		n         = flag.Int("n", 1000, "number of vertices (model generators)")
		m         = flag.Int("m", 5000, "number of edges (er model)")
		k         = flag.Int("k", 6, "edges per new vertex (holmekim/ba) or lattice degree (ws)")
		closure   = flag.Float64("closure", 0.6, "triad closure probability (holmekim)")
		beta      = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		comms     = flag.Int("communities", 4, "number of communities (planted model)")
		commSize  = flag.Int("community-size", 250, "community size (planted model)")
		pin       = flag.Float64("pin", 0.3, "intra-community edge probability (planted)")
		pout      = flag.Float64("pout", 0.005, "inter-community edge probability (planted)")
		seed      = flag.Int64("seed", 42, "random seed")
		out       = flag.String("out", "", "output edge-list file (default stdout)")
		stats     = flag.Bool("stats", false, "print graph statistics to stderr")
		stream    = flag.String("stream", "", "also generate an update stream: additions, removals or mixed")
		count     = flag.Int("count", 100, "number of updates in the stream")
		removeFr  = flag.Float64("remove-fraction", 0.3, "fraction of removals in a mixed stream")
		streamOut = flag.String("stream-out", "", "output file for the update stream (default stdout)")
		timed     = flag.Float64("mean-gap", 0, "if > 0, timestamp the stream with this mean inter-arrival gap in seconds")
		burst     = flag.Float64("burstiness", 0.2, "burstiness of the timestamped stream in [0,1)")
	)
	flag.Parse()

	if *list {
		for _, name := range gen.Presets() {
			p, _ := gen.GetPreset(name)
			fmt.Printf("%-15s %-16s paper |V|=%d |E|=%d, generated |V|=%d\n", name, p.Kind, p.Paper.V, p.Paper.E, p.ScaledV)
		}
		return
	}

	g, err := buildGraph(*preset, *model, *n, *m, *k, *closure, *beta, *comms, *commSize, *pin, *pout, *seed)
	if err != nil {
		fatal(err)
	}
	if *stats {
		st := g.ComputeStats(500, *seed)
		fmt.Fprintf(os.Stderr, "vertices=%d edges=%d avg-degree=%.2f clustering=%.4f effective-diameter=%.2f\n",
			st.N, st.M, st.AvgDegree, st.Clustering, st.EffectiveDiameter)
	}
	if err := writeGraph(g, *out); err != nil {
		fatal(err)
	}

	if *stream != "" {
		updates, err := buildStream(g, *stream, *count, *removeFr, *seed)
		if err != nil {
			fatal(err)
		}
		if *timed > 0 {
			updates = gen.Timestamp(updates, gen.ArrivalModel{MeanGap: *timed, Burstiness: *burst}, *seed+1)
		}
		if err := writeStream(updates, *streamOut); err != nil {
			fatal(err)
		}
	}
}

func buildGraph(preset, model string, n, m, k int, closure, beta float64, comms, commSize int, pin, pout float64, seed int64) (*graph.Graph, error) {
	if preset != "" {
		return gen.BuildPreset(preset, seed)
	}
	switch model {
	case "holmekim", "":
		return gen.Connected(gen.HolmeKim(n, k, closure, seed)), nil
	case "ba":
		return gen.Connected(gen.BarabasiAlbert(n, k, seed)), nil
	case "er":
		return gen.Connected(gen.ErdosRenyi(n, m, seed)), nil
	case "ws":
		return gen.Connected(gen.WattsStrogatz(n, k, beta, seed)), nil
	case "planted":
		g, _ := gen.PlantedPartition(comms, commSize, pin, pout, seed)
		return gen.Connected(g), nil
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

func buildStream(g *graph.Graph, kind string, count int, removeFraction float64, seed int64) ([]graph.Update, error) {
	switch kind {
	case "additions":
		return gen.RandomAdditions(g, count, seed+1)
	case "removals":
		return gen.RandomRemovals(g, count, seed+1)
	case "mixed":
		return gen.MixedStream(g, count, removeFraction, seed+1)
	default:
		return nil, fmt.Errorf("unknown stream kind %q (additions, removals, mixed)", kind)
	}
}

func writeGraph(g *graph.Graph, path string) error {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return graph.WriteEdgeList(w, g)
}

func writeStream(updates []graph.Update, path string) error {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return graph.WriteUpdateStream(w, updates)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcgen:", err)
	os.Exit(1)
}
