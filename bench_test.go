package streambc

// This file is the benchmark harness promised in DESIGN.md: one benchmark per
// table and figure of the paper's evaluation (each drives the corresponding
// experiment in internal/experiments at smoke-test scale; run
// `go run ./cmd/bcbench -exp <id>` for the full, paper-scale reproduction and
// see EXPERIMENTS.md for recorded results), plus micro-benchmarks of the core
// operations (static Brandes, a single incremental addition/removal in the
// MO and DO configurations, and one update on the parallel engine).

import (
	"context"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"streambc/internal/bdstore"
	"streambc/internal/engine"
	"streambc/internal/experiments"
	"streambc/internal/incremental"
	"streambc/internal/server"
)

// benchGraph builds the social-like graph shared by the micro-benchmarks.
func benchGraph(b *testing.B, n int) *Graph {
	b.Helper()
	return GenerateSocialGraph(n, 5, 0.5, 1)
}

// updatePairs returns a set of (addition, removal) pairs that leave the graph
// unchanged when applied in sequence, so a benchmark can loop indefinitely.
func updatePairs(b *testing.B, g *Graph, count int) []Update {
	b.Helper()
	adds, err := RandomAdditions(g, count, 7)
	if err != nil {
		b.Fatal(err)
	}
	pairs := make([]Update, 0, 2*count)
	for _, a := range adds {
		pairs = append(pairs, a, Removal(a.U, a.V))
	}
	return pairs
}

func BenchmarkBrandesStatic(b *testing.B) {
	g := benchGraph(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Betweenness(g)
	}
}

func BenchmarkBrandesParallel(b *testing.B) {
	g := benchGraph(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BetweennessParallel(g, 2)
	}
}

// benchStreamUpdates measures the cost of one online update (half additions,
// half removals) on an already initialised stream processor.
func benchStreamUpdates(b *testing.B, opts ...Option) {
	g := benchGraph(b, 500)
	pairs := updatePairs(b, g, 64)
	s, err := New(g, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Apply(pairs[i%len(pairs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalUpdateMemory(b *testing.B)  { benchStreamUpdates(b) }
func BenchmarkIncrementalUpdateDisk(b *testing.B)    { benchStreamUpdates(b, WithDiskStore(b.TempDir())) }
func BenchmarkIncrementalUpdateWorkers(b *testing.B) { benchStreamUpdates(b, WithWorkers(2)) }

// diskReplayWorkload builds the disk-replay benchmark's graph and stream: a
// dense small-world graph (a hub adjacent to everyone plus random edges, so
// the diameter is 2) and add/remove churn on non-adjacent vertex pairs. For
// almost every source both endpoints of a churned edge sit at the same
// distance, so the dd=0 probe skips the source — the paper's common case on
// real graphs (Table 4) — and the per-update cost of the out-of-core
// configuration is dominated by store traffic: one distance-column probe per
// source plus a record load/save per affected source.
func diskReplayWorkload(b testing.TB, n, count int) (*Graph, []Update) {
	b.Helper()
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		if err := g.AddEdge(0, v); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 4*n; {
		u, v := 1+rng.Intn(n-1), 1+rng.Intn(n-1)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			b.Fatal(err)
		}
		k++
	}
	pairs := make([]Update, 0, 2*count)
	for len(pairs) < 2*count {
		u, v := 1+rng.Intn(n-1), 1+rng.Intn(n-1)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		pairs = append(pairs, Addition(u, v), Removal(u, v))
	}
	return g, pairs
}

// benchDiskReplay measures out-of-core ("DO") replay throughput: add/remove
// churn applied to a disk-backed stream, either one update at a time or in
// batches. The batched path probes each source once and loads/saves each
// affected source once per batch instead of once per update, so the store
// traffic — which dominates the DO configuration — is amortised by the
// batch size. b.N counts updates, so ns/op is directly comparable across
// batch sizes; batch 16 must come in at least 2x faster than single-update
// Apply.
func benchDiskReplay(b *testing.B, batchSize int) {
	g, pairs := diskReplayWorkload(b, 1000, 32)
	s, err := New(g, WithDiskStore(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for applied := 0; applied < b.N; {
		// Full cycles of (addition, removal) pairs leave the graph unchanged,
		// so the replay can loop indefinitely.
		if batchSize <= 1 {
			for _, upd := range pairs {
				if err := s.Apply(upd); err != nil {
					b.Fatal(err)
				}
				applied++
			}
			continue
		}
		for off := 0; off < len(pairs); off += batchSize {
			end := min(off+batchSize, len(pairs))
			if _, err := s.ApplyBatch(pairs[off:end]); err != nil {
				b.Fatal(err)
			}
			applied += end - off
		}
	}
}

func BenchmarkDiskReplayApplySingle(b *testing.B)  { benchDiskReplay(b, 1) }
func BenchmarkDiskReplayApplyBatch16(b *testing.B) { benchDiskReplay(b, 16) }
func BenchmarkDiskReplayApplyBatch64(b *testing.B) { benchDiskReplay(b, 64) }

// The DiskStore pair benchmarks the v1 single-file store against the v2
// sharded layout on the two operations that dominate the out-of-core
// configuration: the per-source distance-column probe (a pread in v1, a page
// read from the mmap view in v2) and a warm batched replay through the
// incremental updater (per-update record writes in v1, write-back batching
// with offset-sorted grouped writes in v2).

func newBenchStoreV1(b *testing.B, n int) incremental.Store {
	b.Helper()
	s, err := bdstore.OpenV1(filepath.Join(b.TempDir(), "bd.bin"), n, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func newBenchStoreV2(b *testing.B, n int) incremental.Store {
	b.Helper()
	s, err := bdstore.Open(b.TempDir(), bdstore.Options{NumVertices: n})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchDiskStoreProbe measures LoadDistances over fully initialised records —
// the skip probe issued for every source on every update.
func benchDiskStoreProbe(b *testing.B, mk func(b *testing.B, n int) incremental.Store) {
	g, _ := diskReplayWorkload(b, 1000, 1)
	store := mk(b, g.N())
	defer store.Close()
	if _, err := incremental.NewUpdater(g, store); err != nil {
		b.Fatal(err)
	}
	n := g.N()
	var dist []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.LoadDistances(i%n, &dist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskStoreV1Probe(b *testing.B) { benchDiskStoreProbe(b, newBenchStoreV1) }
func BenchmarkDiskStoreV2Probe(b *testing.B) { benchDiskStoreProbe(b, newBenchStoreV2) }

// benchDiskStoreApply replays the disk-replay churn in batches of 16 through
// a sequential updater on the given store; ns/op is per update, directly
// comparable between the store versions and with BenchmarkDiskReplay*.
func benchDiskStoreApply(b *testing.B, mk func(b *testing.B, n int) incremental.Store) {
	g, pairs := diskReplayWorkload(b, 1000, 32)
	store := mk(b, g.N())
	defer store.Close()
	u, err := incremental.NewUpdater(g, store)
	if err != nil {
		b.Fatal(err)
	}
	const batchSize = 16
	b.ReportAllocs()
	b.ResetTimer()
	for applied := 0; applied < b.N; {
		for off := 0; off < len(pairs); off += batchSize {
			end := min(off+batchSize, len(pairs))
			if _, err := u.ApplyBatch(pairs[off:end]); err != nil {
				b.Fatal(err)
			}
			applied += end - off
		}
	}
}

func BenchmarkDiskStoreV1ApplyBatch16(b *testing.B) { benchDiskStoreApply(b, newBenchStoreV1) }
func BenchmarkDiskStoreV2ApplyBatch16(b *testing.B) { benchDiskStoreApply(b, newBenchStoreV2) }

// benchExperiment runs one table/figure driver at smoke-test scale.
func benchExperiment(b *testing.B, name string) {
	cfg := experiments.Config{Quick: true, Seed: 42, ScratchDir: b.TempDir()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Datasets(b *testing.B)           { benchExperiment(b, "table2") }
func BenchmarkTable3SpeedupSmallGraphs(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4KeySpeedups(b *testing.B)        { benchExperiment(b, "table4") }
func BenchmarkTable5OnlineMisses(b *testing.B)       { benchExperiment(b, "table5") }
func BenchmarkFigure5VariantSpeedup(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFigure6ParallelSpeedup(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFigure7Scaling(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFigure8OnlineUpdates(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFigure9GirvanNewman(b *testing.B)      { benchExperiment(b, "fig9") }

func BenchmarkGirvanNewmanIncremental(b *testing.B) {
	g, _ := GenerateCommunityGraph(4, 40, 0.25, 0.01, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectCommunities(g, CommunityOptions{TargetCommunities: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServingPipeline pushes updates through the serving subsystem's
// coalescing ingest pipeline in batches of batchSize, waiting for every batch
// to be applied. Comparing batchSize 1 against larger batches isolates the
// per-request round-trip overhead of the serving layer from the engine's
// update cost, which is the number that matters for serving throughput.
func benchServingPipeline(b *testing.B, batchSize int) {
	g := benchGraph(b, 300)
	adds, err := RandomAdditions(g, 64, 7)
	if err != nil {
		b.Fatal(err)
	}
	removals := make([]Update, len(adds))
	for i, a := range adds {
		removals[i] = Removal(a.U, a.V)
	}
	eng, err := engine.New(g, engine.Config{})
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(eng, server.Config{})
	srv.Start()
	defer func() {
		srv.Close()
		eng.Close()
	}()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for applied := 0; applied < b.N; {
		// One full cycle (all additions, then all removals) leaves the graph
		// unchanged, so the benchmark can loop indefinitely.
		for _, stream := range [][]Update{adds, removals} {
			for off := 0; off < len(stream); off += batchSize {
				end := min(off+batchSize, len(stream))
				batch, err := srv.Enqueue(stream[off:end])
				if err != nil {
					b.Fatal(err)
				}
				if err := batch.Wait(ctx); err != nil {
					b.Fatal(err)
				}
				if errs := batch.Errs(); len(errs) > 0 {
					b.Fatal(errs[0])
				}
				applied += end - off
			}
		}
	}
}

func BenchmarkPipelineApplySingle(b *testing.B)    { benchServingPipeline(b, 1) }
func BenchmarkPipelineApplyBatched16(b *testing.B) { benchServingPipeline(b, 16) }
func BenchmarkPipelineApplyBatched64(b *testing.B) { benchServingPipeline(b, 64) }
